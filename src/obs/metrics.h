#ifndef HATTRICK_OBS_METRICS_H_
#define HATTRICK_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace hattrick {
namespace obs {

/// Named counters, gauges and reservoir histograms for one benchmark run.
///
/// Design rules (see DESIGN.md §8):
///  - Handles are resolved once at attach time (GetCounter et al. take a
///    registry lock); the increment paths are lock-free and cheap enough
///    to stay always-on at commit/merge/replay granularity. Nothing in
///    this subsystem is touched per row or per operator call — per-row
///    work accounting remains WorkMeter's job.
///  - Snapshots are deterministic: entries are emitted sorted by name and
///    all floating-point values are formatted with a fixed format, so two
///    same-seed simulated runs export byte-identical JSON/CSV.
///  - A registry lives for one driver run; probes and cached handles must
///    not outlive it (drivers snapshot before tearing anything down).

/// A monotonically increasing count, sharded across cache lines so
/// concurrent writers (threaded-driver clients) do not contend.
class Counter {
 public:
  static constexpr size_t kShards = 16;

  void Inc(uint64_t delta = 1) {
    Shard& shard = shards_[ShardIndex()];
    shard.value.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Sum of all shards. Addition is commutative, so the value is exact
  /// (and deterministic) regardless of which threads incremented.
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };

  static size_t ShardIndex();

  std::array<Shard, kShards> shards_{};
};

/// A point-in-time double. Either pushed with Set() or pulled through a
/// probe callback evaluated at snapshot time (used for values that live
/// in another subsystem, e.g. a core pool's utilization or a replica's
/// backlog depth).
class Gauge {
 public:
  void Set(double value) {
    value_.store(value, std::memory_order_relaxed);
  }

  /// Installs a pull probe; it is evaluated at snapshot time and must
  /// stay valid until the registry's last Snapshot().
  void SetProbe(std::function<double()> probe) EXCLUDES(probe_mutex_) {
    MutexLock lock(&probe_mutex_);
    probe_ = std::move(probe);
  }

  double Value() const EXCLUDES(probe_mutex_) {
    {
      MutexLock lock(&probe_mutex_);
      if (probe_) return probe_();
    }
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
  mutable Mutex probe_mutex_;
  std::function<double()> probe_ GUARDED_BY(probe_mutex_);
};

/// Reservoir-sampled distribution: keeps an exact count/sum/min/max plus
/// a bounded uniform sample (algorithm R with a fixed-seed deterministic
/// RNG, so simulated runs reproduce the same reservoir byte-for-byte).
class Histogram {
 public:
  explicit Histogram(size_t capacity = 512);

  void Add(double sample);

  uint64_t count() const;
  double sum() const;
  double Mean() const;
  double Min() const;  // 0 when empty
  double Max() const;  // 0 when empty

  /// p-quantile (p in [0,1]) of the reservoir, nearest-rank; approximate
  /// once count() exceeds the capacity, exact below it. 0 when empty.
  double Percentile(double p) const;

 private:
  const size_t capacity_;
  mutable Mutex mutex_;
  uint64_t count_ GUARDED_BY(mutex_) = 0;
  double sum_ GUARDED_BY(mutex_) = 0;
  double min_ GUARDED_BY(mutex_) = 0;
  double max_ GUARDED_BY(mutex_) = 0;
  uint64_t rng_state_ GUARDED_BY(mutex_);
  std::vector<double> reservoir_ GUARDED_BY(mutex_);
};

/// One flattened metric value as of a snapshot.
struct MetricEntry {
  enum class Kind { kCounter, kGauge, kHistogram };

  std::string name;
  Kind kind = Kind::kCounter;
  uint64_t count = 0;   // counter value / histogram count
  double value = 0;     // gauge value / histogram sum
  double min = 0, max = 0, mean = 0, p50 = 0, p99 = 0;  // histograms only
};

/// Point-in-time copy of a whole registry, sorted by name.
struct MetricsSnapshot {
  std::vector<MetricEntry> entries;

  /// Entry by exact name; nullptr when absent.
  const MetricEntry* Find(const std::string& name) const;

  /// Counter value / histogram count by name; 0 when absent.
  uint64_t CountOf(const std::string& name) const;
  /// Gauge value / histogram sum by name; 0 when absent.
  double ValueOf(const std::string& name) const;

  /// {"metrics":[{"name":...,"kind":...,...},...]} with deterministic
  /// ordering and number formatting.
  std::string ToJson() const;

  /// Flat CSV: name,kind,count,value,min,max,mean,p50,p99 (header first).
  std::string ToCsv() const;
};

/// Owns the metric objects of one run. Lookup creates on first use, so
/// every layer can resolve the same canonical name independently.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name, size_t capacity = 512);

  MetricsSnapshot Snapshot() const;

 private:
  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mutex_);
};

/// Canonical domain metric names. Engines and drivers resolve these
/// against the run's registry; the drivers pre-register all of them so
/// every metrics export contains the txn / replication / merge / pool
/// groups (zero-valued when the engine design lacks the subsystem).
inline constexpr char kTxnCommits[] = "txn.commits";
inline constexpr char kTxnAbortsWriteConflict[] = "txn.aborts.write_conflict";
inline constexpr char kTxnAbortsReadConflict[] = "txn.aborts.read_conflict";
inline constexpr char kTxnWalRecords[] = "txn.wal.records";
inline constexpr char kTxnWalBytes[] = "txn.wal.bytes";
inline constexpr char kTxnDeltaInstalls[] = "txn.delta.installs";
inline constexpr char kTxnRetryBackoffSeconds[] =
    "txn.retry.backoff_seconds";  // gauge
inline constexpr char kReplShippedBytes[] = "repl.shipped_bytes";  // gauge
inline constexpr char kReplAppliedRecords[] = "repl.applied_records";
inline constexpr char kReplAppliedLsn[] = "repl.applied_lsn";
inline constexpr char kReplBacklogRecords[] = "repl.backlog_records";
inline constexpr char kReplRetainedRecords[] = "repl.retained_records";
inline constexpr char kReplResendRequests[] = "repl.resend_requests";
inline constexpr char kReplResendsShipped[] = "repl.resends_shipped";
inline constexpr char kReplResendsLost[] = "repl.resends_lost";
inline constexpr char kReplDuplicateSkips[] = "repl.duplicate_skips";
inline constexpr char kReplCrashRecoveries[] = "repl.crash_recoveries";
inline constexpr char kReplThrottleSeconds[] = "repl.throttle_seconds";
inline constexpr char kFaultInjectedDrops[] = "fault.injected.drops";
inline constexpr char kFaultInjectedDuplicates[] = "fault.injected.duplicates";
inline constexpr char kFaultInjectedReorders[] = "fault.injected.reorders";
inline constexpr char kStoreDeltaPending[] = "store.delta_pending";
inline constexpr char kStoreMergePasses[] = "store.merge.passes";
inline constexpr char kStoreMergeRows[] = "store.merge.rows";
inline constexpr char kStoreMergeRecords[] = "store.merge.records";
inline constexpr char kStoreFoldPasses[] = "store.fold.passes";
inline constexpr char kStoreFoldRows[] = "store.fold.rows";
inline constexpr char kStoreVersionDepth[] = "store.version_depth";
inline constexpr char kStoreBtreeSplits[] = "store.btree.splits";
inline constexpr char kStoreVacuumedVersions[] = "store.vacuumed_versions";
/// Sharded engine (src/shard/): two-phase-commit outcome counts and the
/// coordinator-recovery count. Per-shard replication backlog gauges are
/// registered dynamically as kShardBacklogPrefix + shard index.
inline constexpr char kShard2pcPrepares[] = "shard.2pc.prepares";
inline constexpr char kShard2pcCommits[] = "shard.2pc.commits";
inline constexpr char kShard2pcAborts[] = "shard.2pc.aborts";
inline constexpr char kShard2pcCoordinatorRecoveries[] =
    "shard.2pc.coordinator_recoveries";
inline constexpr char kShardBacklogPrefix[] = "shard.backlog.";
/// Spans the bounded trace ring evicted (Tracer::dropped()); the drivers
/// publish it at snapshot time so a truncated trace is visible in the
/// metrics export instead of failing silently.
inline constexpr char kTraceDroppedSpans[] = "obs.trace.dropped_spans";

/// Creates the canonical domain metrics above (as zero-valued objects)
/// so they appear in every snapshot even when nothing increments them.
void PreRegisterDomainMetrics(MetricsRegistry* registry);

}  // namespace obs
}  // namespace hattrick

#endif  // HATTRICK_OBS_METRICS_H_
