#ifndef HATTRICK_OBS_OBSERVABILITY_H_
#define HATTRICK_OBS_OBSERVABILITY_H_

#include <cstdint>

#include "common/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hattrick {
namespace obs {

/// The bundle a driver hands to the engine / pools for one run. All
/// members optional: a null metrics registry disables counting, a null
/// tracer disables spans, and the default-constructed bundle is the
/// "observability off" state benches run with. The clock decides whether
/// spans record virtual time (simulator's VirtualClock) or wall time
/// (threaded driver's WallClock) — the one API serves both.
struct Observability {
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;
  const Clock* clock = nullptr;

  bool enabled() const { return metrics != nullptr || tracer != nullptr; }
};

/// Logical track (tid) layout for trace export. Tracks are per client /
/// lane, not per OS thread, so simulated and threaded runs produce the
/// same track structure.
inline constexpr uint32_t kTrackTClientBase = 1;      // + t-client index
inline constexpr uint32_t kTrackAClientBase = 1000;   // + a-client index
inline constexpr uint32_t kTrackApplier = 2000;       // WAL replay / pump
inline constexpr uint32_t kTrackEngine = 3000;        // merges, vacuum, ship
inline constexpr uint32_t kTrackMorselBase = 10000;   // per-way query lanes
inline constexpr uint32_t kMorselLanesPerClient = 64;

/// Track for way `way` of a query running on a-client `a_index`.
inline uint32_t MorselTrack(uint32_t a_index, uint32_t way) {
  return kTrackMorselBase + a_index * kMorselLanesPerClient + way;
}

}  // namespace obs
}  // namespace hattrick

#endif  // HATTRICK_OBS_OBSERVABILITY_H_
