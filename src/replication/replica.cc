#include "replication/replica.h"

#include <cassert>

namespace hattrick {

Replica::Replica(Catalog* catalog, WalStream* stream)
    : catalog_(catalog), stream_(stream) {}

bool Replica::ApplyNext(WorkMeter* meter) {
  std::optional<WalRecord> record = stream_->Peek(applied_lsn_);
  if (!record.has_value()) return false;
  assert(record->lsn == applied_lsn_ + 1);

  const Ts commit_ts = oracle_.Allocate();
  for (const WalOp& op : record->ops) {
    RowTable* table = catalog_->GetTable(op.table_id);
    assert(table != nullptr);
    if (op.kind == WalOp::Kind::kInsert) {
      const Rid rid = table->Insert(op.row, commit_ts, meter);
      assert(rid == op.rid && "replica diverged from primary");
      (void)rid;
      for (const IndexInfo* index : catalog_->TableIndexes(op.table_id)) {
        index->tree->Insert(index->KeyFor(op.row, op.rid), op.rid, meter);
      }
    } else {
      Row old_row;
      const bool had =
          table->ReadLatest(op.rid, &old_row, /*meter=*/nullptr);
      const Status s = table->AddVersion(op.rid, op.row, commit_ts, meter);
      assert(s.ok());
      (void)s;
      for (const IndexInfo* index : catalog_->TableIndexes(op.table_id)) {
        const std::string new_key = index->KeyFor(op.row, op.rid);
        if (had && new_key == index->KeyFor(old_row, op.rid)) continue;
        index->tree->Insert(new_key, op.rid, meter);
      }
    }
  }
  if (meter != nullptr) {
    ++meter->wal_records;
    meter->wal_bytes += record->Encode().size();
  }
  oracle_.AdvanceCommitted(commit_ts);
  stream_->Consume(record->lsn);
  applied_lsn_ = record->lsn;
  return true;
}

size_t Replica::CatchUp(WorkMeter* meter) {
  size_t applied = 0;
  while (ApplyNext(meter)) ++applied;
  return applied;
}

void Replica::ResetTo(uint64_t lsn, Ts ts) {
  applied_lsn_ = lsn;
  oracle_.ResetTo(ts);
}

}  // namespace hattrick
