#include "replication/replica.h"

#include <algorithm>
#include <string>

namespace hattrick {

Replica::Replica(Catalog* catalog, WalStream* stream)
    : catalog_(catalog), stream_(stream) {}

void Replica::SetFaultInjector(const FaultInjector* injector) {
  injector_ = (injector != nullptr && injector->enabled()) ? injector
                                                           : nullptr;
}

Replica::StepResult Replica::Step(WorkMeter* meter) {
  ++steps_;

  // Injected crash: lose all volatile state, restart from the durable
  // apply position. Only meaningful while there is replay work — a
  // crashed-while-idle standby restarts into the same idle state.
  if (injector_ != nullptr && stream_->PendingAfter(applied_lsn_) > 0 &&
      injector_->CrashBeforeApply(steps_)) {
    Resync(meter);
    return StepResult::kRecovered;
  }

  if (backoff_remaining_ > 0) {
    --backoff_remaining_;
    ++backoff_steps_;
    return StepResult::kBackingOff;
  }

  StatusOr<ShippedRecord> shipped = stream_->Peek(applied_lsn_);
  if (!shipped.ok()) {
    if (shipped.status().code() == StatusCode::kNotFound) {
      // Fully caught up; any pending-gap bookkeeping is stale.
      waiting_lsn_ = 0;
      resend_attempts_ = 0;
      return StepResult::kIdle;
    }
    if (shipped.status().code() == StatusCode::kOutOfRange) {
      // Gap: the record after applied_lsn_ was lost in flight.
      const uint64_t missing = applied_lsn_ + 1;
      if (waiting_lsn_ != missing) {
        waiting_lsn_ = missing;
        resend_attempts_ = 0;
      }
      ++resend_attempts_;
      if (resend_attempts_ > kMaxResendAttempts) {
        // Record-by-record retry is not making progress (every resend
        // lost); escalate to a full tail resync, which is reliable.
        Resync(meter);
        return StepResult::kRecovered;
      }
      ++resend_requests_;
      const Status resent =
          stream_->RequestResend(missing, resend_attempts_);
      if (!resent.ok()) {
        last_error_ = resent;
        return StepResult::kError;
      }
      backoff_remaining_ = std::min(
          kMaxBackoffSteps, 1u << std::min(resend_attempts_ - 1, 7u));
      return StepResult::kResendRequested;
    }
    last_error_ = shipped.status();
    return StepResult::kError;
  }

  const uint64_t lsn = shipped->record.lsn;
  if (lsn <= applied_lsn_) {
    // Duplicate delivery: already durably applied; consume idempotently.
    const Status consumed = stream_->Consume(lsn);
    if (!consumed.ok()) {
      last_error_ = consumed;
      return StepResult::kError;
    }
    ++duplicate_skips_;
    return StepResult::kDuplicateSkipped;
  }

  const Status applied = ApplyRecord(shipped.value(), meter);
  if (!applied.ok()) {
    last_error_ = applied;
    return StepResult::kError;
  }
  const Status consumed = stream_->Consume(lsn);
  if (!consumed.ok()) {
    last_error_ = consumed;
    return StepResult::kError;
  }
  applied_lsn_ = lsn;
  stream_->Acknowledge(applied_lsn_);
  waiting_lsn_ = 0;
  resend_attempts_ = 0;
  return StepResult::kApplied;
}

bool Replica::ApplyNext(WorkMeter* meter) {
  while (true) {
    switch (Step(meter)) {
      case StepResult::kApplied:
        return true;
      case StepResult::kIdle:
      case StepResult::kError:
        return false;
      case StepResult::kDuplicateSkipped:
      case StepResult::kResendRequested:
      case StepResult::kBackingOff:
      case StepResult::kRecovered:
        continue;  // recovery in progress; keep stepping
    }
  }
}

size_t Replica::CatchUp(WorkMeter* meter) {
  size_t applied = 0;
  while (ApplyNext(meter)) ++applied;
  return applied;
}

Status Replica::ApplyRecord(const ShippedRecord& shipped, WorkMeter* meter) {
  const WalRecord& record = shipped.record;
  if (record.lsn != applied_lsn_ + 1) {
    return Status::Internal("apply out of order: got lsn " +
                            std::to_string(record.lsn) + " at applied " +
                            std::to_string(applied_lsn_));
  }
  const Ts commit_ts = oracle_.Allocate();
  for (const WalOp& op : record.ops) {
    RowTable* table = catalog_->GetTable(op.table_id);
    if (table == nullptr) {
      return Status::Internal("replay references unknown table id " +
                              std::to_string(op.table_id));
    }
    // Exhaustive over WalOp::Kind: a new kind must be handled here
    // explicitly, not silently replayed as an update (the previous
    // if/else chain's fallback). WalRecord::Decode rejects out-of-range
    // kind bytes before they reach this switch.
    switch (op.kind) {
      case WalOp::Kind::kInsert: {
        const Rid rid = table->Insert(op.row, commit_ts, meter);
        if (rid != op.rid) {
          return Status::Internal("replica diverged from primary: insert "
                                  "landed at rid " +
                                  std::to_string(rid) + ", expected " +
                                  std::to_string(op.rid));
        }
        for (const IndexInfo* index : catalog_->TableIndexes(op.table_id)) {
          index->tree->Insert(index->KeyFor(op.row, op.rid), op.rid, meter);
        }
        break;
      }
      case WalOp::Kind::kDelta: {
        // Commutative increment: fold it as a delta version, exactly as
        // the primary's row store holds it. No index ever keys on a
        // delta-eligible (numeric accumulator) column, so there is no
        // index maintenance on this path.
        HATTRICK_RETURN_IF_ERROR(table->AddDeltaVersion(
            op.rid, op.column, op.row[0], commit_ts, meter));
        break;
      }
      case WalOp::Kind::kUpdate: {
        Row old_row;
        const bool had =
            table->ReadLatest(op.rid, &old_row, /*meter=*/nullptr);
        HATTRICK_RETURN_IF_ERROR(
            table->AddVersion(op.rid, op.row, commit_ts, meter));
        for (const IndexInfo* index : catalog_->TableIndexes(op.table_id)) {
          const std::string new_key = index->KeyFor(op.row, op.rid);
          if (had) {
            const std::string old_key = index->KeyFor(old_row, op.rid);
            if (new_key == old_key) continue;
            // Key-changing update: drop the stale entry or standby-side
            // index lookups keep resolving the old key.
            index->tree->Remove(old_key, meter);
          }
          index->tree->Insert(new_key, op.rid, meter);
        }
        break;
      }
    }
  }
  if (meter != nullptr) {
    ++meter->wal_records;
    // Replay work is metered from the wire size carried with the record;
    // the apply path never re-encodes.
    meter->wal_bytes += shipped.encoded_size;
    if (injector_ != nullptr) {
      const double multiplier = injector_->SlowApplyMultiplier(record.lsn);
      if (multiplier > 1.0) {
        meter->wal_bytes += static_cast<uint64_t>(
            static_cast<double>(shipped.encoded_size) * (multiplier - 1.0));
      }
    }
  }
  oracle_.AdvanceCommitted(commit_ts);
  return Status::OK();
}

void Replica::Resync(WorkMeter* meter) {
  ++crash_recoveries_;
  waiting_lsn_ = 0;
  resend_attempts_ = 0;
  backoff_remaining_ = 0;
  const size_t redelivered = stream_->ResyncFrom(applied_lsn_);
  // The reconnect re-ships the tail; charge its framing so recovery has
  // a cost in simulated time (per-record payload is charged on apply).
  if (meter != nullptr) meter->wal_bytes += redelivered;
}

void Replica::ResetTo(uint64_t lsn, Ts ts) {
  applied_lsn_ = lsn;
  oracle_.ResetTo(ts);
  waiting_lsn_ = 0;
  resend_attempts_ = 0;
  backoff_remaining_ = 0;
  steps_ = 0;
  duplicate_skips_ = 0;
  resend_requests_ = 0;
  backoff_steps_ = 0;
  crash_recoveries_ = 0;
  last_error_ = Status::OK();
}

}  // namespace hattrick
