#include "replication/wal_stream.h"

#include <cassert>

namespace hattrick {

const char* ReplicationModeName(ReplicationMode mode) {
  switch (mode) {
    case ReplicationMode::kAsync:
      return "ASYNC";
    case ReplicationMode::kSyncShip:
      return "ON";
    case ReplicationMode::kRemoteApply:
      return "REMOTE_APPLY";
  }
  return "UNKNOWN";
}

void WalStream::OnCommit(const WalRecord& record) {
  std::lock_guard lock(mutex_);
  assert(record.lsn > head_lsn_ && "records must arrive in commit order");
  if (encoded_.empty()) front_lsn_ = record.lsn;
  std::string bytes = record.Encode();
  shipped_bytes_ += bytes.size();
  encoded_.push_back(std::move(bytes));
  head_lsn_ = record.lsn;
}

std::optional<WalRecord> WalStream::Peek(uint64_t applied_lsn) const {
  std::lock_guard lock(mutex_);
  if (encoded_.empty()) return std::nullopt;
  assert(front_lsn_ > applied_lsn && "applier fell out of sync");
  (void)applied_lsn;
  StatusOr<WalRecord> rec = WalRecord::Decode(encoded_.front());
  assert(rec.ok());
  return std::move(rec).value();
}

void WalStream::Consume(uint64_t lsn) {
  std::lock_guard lock(mutex_);
  assert(!encoded_.empty());
  assert(front_lsn_ == lsn);
  (void)lsn;
  encoded_.pop_front();
  front_lsn_ += 1;
}

uint64_t WalStream::head_lsn() const {
  std::lock_guard lock(mutex_);
  return head_lsn_;
}

size_t WalStream::PendingAfter(uint64_t applied_lsn) const {
  std::lock_guard lock(mutex_);
  if (head_lsn_ <= applied_lsn) return 0;
  return head_lsn_ - applied_lsn;
}

uint64_t WalStream::shipped_bytes() const {
  std::lock_guard lock(mutex_);
  return shipped_bytes_;
}

void WalStream::Reset() {
  std::lock_guard lock(mutex_);
  encoded_.clear();
  head_lsn_ = 0;
  front_lsn_ = 0;
  shipped_bytes_ = 0;
}

}  // namespace hattrick
