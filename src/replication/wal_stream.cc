#include "replication/wal_stream.h"

#include <algorithm>

namespace hattrick {

const char* ReplicationModeName(ReplicationMode mode) {
  switch (mode) {
    case ReplicationMode::kAsync:
      return "ASYNC";
    case ReplicationMode::kSyncShip:
      return "ON";
    case ReplicationMode::kRemoteApply:
      return "REMOTE_APPLY";
  }
  return "UNKNOWN";
}

void WalStream::SetFaultInjector(const FaultInjector* injector) {
  MutexLock lock(&mutex_);
  injector_ = injector;
}

void WalStream::OnCommit(const WalRecord& record) {
  MutexLock lock(&mutex_);
  if (record.lsn <= head_lsn_) return;  // re-delivered commit: ignore
  Entry entry{record.lsn, record.Encode()};
  head_lsn_ = record.lsn;
  shipped_bytes_ += entry.bytes.size();
  retained_.push_back(entry);

  // Network delivery, subject to injected faults.
  if (injector_ != nullptr && injector_->DropShip(entry.lsn)) {
    ++injected_drops_;
    return;  // lost in flight; recoverable via RequestResend
  }
  if (injector_ != nullptr && injector_->ReorderShip(entry.lsn) &&
      !hold_pending_) {
    // Held back one slot: this record arrives after its successor.
    held_ = std::move(entry);
    hold_pending_ = true;
    ++injected_reorders_;
    return;
  }
  const bool duplicate =
      injector_ != nullptr && injector_->DuplicateShip(entry.lsn);
  delivery_.push_back(entry);
  if (duplicate) {
    delivery_.push_back(entry);
    ++injected_duplicates_;
  }
  if (hold_pending_) {  // the held predecessor arrives late, out of order
    delivery_.push_back(std::move(held_));
    hold_pending_ = false;
  }
}

StatusOr<ShippedRecord> WalStream::Peek(uint64_t applied_lsn) const {
  MutexLock lock(&mutex_);
  if (delivery_.empty()) {
    if (head_lsn_ > applied_lsn) {
      // Shipped records exist beyond the applied point but none were
      // delivered: the tail was dropped (or is held back by a reorder).
      return Status::OutOfRange(
          "gap: lsn " + std::to_string(applied_lsn + 1) + " not delivered");
    }
    return Status::NotFound("stream drained");
  }
  const Entry& front = delivery_.front();
  if (front.lsn > applied_lsn + 1) {
    return Status::OutOfRange(
        "gap: lsn " + std::to_string(applied_lsn + 1) +
        " missing (front is " + std::to_string(front.lsn) + ")");
  }
  StatusOr<WalRecord> record = WalRecord::Decode(front.bytes);
  if (!record.ok()) {
    return Status::Internal("corrupt record at lsn " +
                            std::to_string(front.lsn) + ": " +
                            record.status().message());
  }
  return ShippedRecord{std::move(record).value(), front.bytes.size()};
}

Status WalStream::Consume(uint64_t lsn) {
  MutexLock lock(&mutex_);
  if (delivery_.empty()) {
    return Status::InvalidArgument("Consume on empty delivery queue");
  }
  if (delivery_.front().lsn != lsn) {
    return Status::InvalidArgument(
        "Consume lsn " + std::to_string(lsn) + " but front is " +
        std::to_string(delivery_.front().lsn));
  }
  delivery_.pop_front();
  return Status::OK();
}

void WalStream::Acknowledge(uint64_t lsn) {
  MutexLock lock(&mutex_);
  while (!retained_.empty() && retained_.front().lsn <= lsn) {
    retained_.pop_front();
  }
  acked_lsn_ = std::max(acked_lsn_, lsn);
}

Status WalStream::RequestResend(uint64_t lsn, uint64_t attempt) {
  MutexLock lock(&mutex_);
  ++resends_requested_;
  if (lsn <= acked_lsn_ || lsn > head_lsn_) {
    return Status::NotFound("lsn " + std::to_string(lsn) +
                            " not retained (acked through " +
                            std::to_string(acked_lsn_) + ")");
  }
  // retained_ holds contiguous LSNs acked_lsn_ + 1 .. head_lsn_.
  const size_t index = static_cast<size_t>(lsn - acked_lsn_ - 1);
  if (index >= retained_.size() || retained_[index].lsn != lsn) {
    return Status::Internal("retention buffer out of sync at lsn " +
                            std::to_string(lsn));
  }
  const Entry& entry = retained_[index];
  if (injector_ != nullptr && injector_->DropResend(lsn, attempt)) {
    ++resends_lost_;  // the sender cannot tell; the applier retries
    return Status::OK();
  }
  delivery_.push_front(entry);
  ++resends_delivered_;
  return Status::OK();
}

size_t WalStream::ResyncFrom(uint64_t applied_lsn) {
  MutexLock lock(&mutex_);
  delivery_.clear();
  hold_pending_ = false;
  held_ = Entry{};
  size_t delivered = 0;
  for (const Entry& entry : retained_) {
    if (entry.lsn <= applied_lsn) continue;
    delivery_.push_back(entry);
    ++delivered;
  }
  return delivered;
}

uint64_t WalStream::head_lsn() const {
  MutexLock lock(&mutex_);
  return head_lsn_;
}

size_t WalStream::PendingAfter(uint64_t applied_lsn) const {
  MutexLock lock(&mutex_);
  if (head_lsn_ <= applied_lsn) return 0;
  return head_lsn_ - applied_lsn;
}

size_t WalStream::RetainedRecords() const {
  MutexLock lock(&mutex_);
  return retained_.size();
}

uint64_t WalStream::shipped_bytes() const {
  MutexLock lock(&mutex_);
  return shipped_bytes_;
}

uint64_t WalStream::injected_drops() const {
  MutexLock lock(&mutex_);
  return injected_drops_;
}

uint64_t WalStream::injected_duplicates() const {
  MutexLock lock(&mutex_);
  return injected_duplicates_;
}

uint64_t WalStream::injected_reorders() const {
  MutexLock lock(&mutex_);
  return injected_reorders_;
}

uint64_t WalStream::resends_requested() const {
  MutexLock lock(&mutex_);
  return resends_requested_;
}

uint64_t WalStream::resends_delivered() const {
  MutexLock lock(&mutex_);
  return resends_delivered_;
}

uint64_t WalStream::resends_lost() const {
  MutexLock lock(&mutex_);
  return resends_lost_;
}

void WalStream::Reset() {
  MutexLock lock(&mutex_);
  retained_.clear();
  delivery_.clear();
  held_ = Entry{};
  hold_pending_ = false;
  head_lsn_ = 0;
  acked_lsn_ = 0;
  shipped_bytes_ = 0;
  injected_drops_ = 0;
  injected_duplicates_ = 0;
  injected_reorders_ = 0;
  resends_requested_ = 0;
  resends_delivered_ = 0;
  resends_lost_ = 0;
}

}  // namespace hattrick
