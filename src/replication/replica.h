#ifndef HATTRICK_REPLICATION_REPLICA_H_
#define HATTRICK_REPLICATION_REPLICA_H_

#include <cstdint>

#include "common/status.h"
#include "replication/wal_stream.h"
#include "storage/catalog.h"
#include "txn/timestamp.h"

namespace hattrick {

/// A read-only standby that replays a primary's WAL stream into its own
/// catalog (the PostgreSQL-SR standby of Section 6.3).
///
/// The replica has its own timestamp domain: each applied record commits
/// at a fresh replica timestamp, and analytical queries snapshot the
/// replica's last_committed. The freshness a query observes is therefore
/// exactly the set of records replayed before the query started —
/// matching how a standby exposes stale snapshots in the paper.
///
/// The owner (IsolatedEngine) decides *when* ApplyNext runs: in simulated
/// time it is a dedicated applier process on the standby's cores; in
/// threaded mode it is an applier thread.
class Replica {
 public:
  /// `catalog` must have the same table layout as the primary and is
  /// owned by the caller. `stream` is the shipping channel.
  Replica(Catalog* catalog, WalStream* stream);

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  /// Replays the next shipped record if any. Returns true if a record was
  /// applied. Metering covers row writes, index maintenance, and the
  /// decoded record (wal_records/wal_bytes = replay work).
  bool ApplyNext(WorkMeter* meter);

  /// Replays until the stream is drained; returns records applied.
  size_t CatchUp(WorkMeter* meter);

  /// Highest LSN applied.
  uint64_t applied_lsn() const { return applied_lsn_; }

  /// Records shipped but not yet applied.
  size_t Lag() const { return stream_->PendingAfter(applied_lsn_); }

  /// Snapshot for analytical queries on the standby.
  Ts Snapshot() const { return oracle_.last_committed(); }

  /// Resets applied state back to `lsn` and the timestamp domain to `ts`
  /// (benchmark reset; the caller restores catalog contents).
  void ResetTo(uint64_t lsn, Ts ts);

  Catalog* catalog() const { return catalog_; }

 private:
  Catalog* catalog_;
  WalStream* stream_;
  TimestampOracle oracle_;
  uint64_t applied_lsn_ = 0;
};

}  // namespace hattrick

#endif  // HATTRICK_REPLICATION_REPLICA_H_
