#ifndef HATTRICK_REPLICATION_REPLICA_H_
#define HATTRICK_REPLICATION_REPLICA_H_

#include <cstdint>

#include "common/status.h"
#include "fault/fault_injector.h"
#include "replication/wal_stream.h"
#include "storage/catalog.h"
#include "txn/timestamp.h"

namespace hattrick {

/// A read-only standby that replays a primary's WAL stream into its own
/// catalog (the PostgreSQL-SR standby of Section 6.3).
///
/// The replica has its own timestamp domain: each applied record commits
/// at a fresh replica timestamp, and analytical queries snapshot the
/// replica's last_committed. The freshness a query observes is therefore
/// exactly the set of records replayed before the query started —
/// matching how a standby exposes stale snapshots in the paper.
///
/// The apply loop is fault tolerant:
///  - *Idempotent apply*: records at or below applied_lsn() (duplicate
///    deliveries) are consumed without re-applying.
///  - *Gap recovery*: a missing record is re-requested from the stream's
///    retention buffer with capped exponential backoff (1, 2, 4, ...
///    steps, capped at kMaxBackoffSteps); after kMaxResendAttempts
///    failed attempts the replica escalates to a full resync from its
///    last durably applied LSN, which always converges.
///  - *Crash/restart*: an injected crash discards all volatile state
///    (backoff timers, in-flight deliveries) and resyncs from
///    applied_lsn(), the durable replay position. Already-applied rows
///    survive the crash (apply is record-atomic and durable here), so
///    recovery re-delivers only the un-applied tail and duplicate
///    deliveries are skipped idempotently.
/// No path asserts or aborts; unexpected stream states surface as
/// kError with the Status preserved in last_error().
///
/// The owner (IsolatedEngine) decides *when* Step runs: in simulated
/// time it is a dedicated applier process on the standby's cores; in
/// threaded mode it is an applier thread.
class Replica {
 public:
  /// What one apply step did.
  enum class StepResult {
    kIdle,              // caught up: nothing shipped beyond applied_lsn
    kApplied,           // replayed one record
    kDuplicateSkipped,  // consumed a duplicate delivery without applying
    kResendRequested,   // detected a gap and requested retransmission
    kBackingOff,        // gap persists; waiting out the backoff window
    kRecovered,         // crashed and resynced (crash fault or escalation)
    kError,             // unrecoverable stream/apply error (last_error())
  };

  /// After this many lost resend attempts for one LSN the replica stops
  /// retrying record-by-record and resyncs the whole tail.
  static constexpr uint32_t kMaxResendAttempts = 6;
  /// Cap of the exponential backoff, in apply steps.
  static constexpr uint32_t kMaxBackoffSteps = 8;

  /// `catalog` must have the same table layout as the primary and is
  /// owned by the caller. `stream` is the shipping channel.
  Replica(Catalog* catalog, WalStream* stream);

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  /// Attaches the crash/slow-apply fault model (nullptr = no faults).
  /// Not owned; must outlive the replica or be detached first.
  void SetFaultInjector(const FaultInjector* injector);

  /// Runs one step of the apply loop (at most one record applied).
  /// Metering covers row writes, index maintenance, the decoded record
  /// (wal_records/wal_bytes = replay work), re-shipped bytes on resends
  /// and resyncs, and the slow-apply fault's extra work.
  StepResult Step(WorkMeter* meter);

  /// Replays the next shipped record if any, driving recovery steps as
  /// needed. Returns true if a record was applied, false once the
  /// stream is drained (or on kError).
  bool ApplyNext(WorkMeter* meter);

  /// Replays until the stream is drained; returns records applied.
  size_t CatchUp(WorkMeter* meter);

  /// Highest LSN durably applied.
  uint64_t applied_lsn() const { return applied_lsn_; }

  /// Records shipped but not yet applied.
  size_t Lag() const { return stream_->PendingAfter(applied_lsn_); }

  /// Snapshot for analytical queries on the standby.
  Ts Snapshot() const { return oracle_.last_committed(); }

  /// Resets applied state back to `lsn` and the timestamp domain to `ts`
  /// (benchmark reset; the caller restores catalog contents). Clears all
  /// recovery state and fault/recovery counters.
  void ResetTo(uint64_t lsn, Ts ts);

  Catalog* catalog() const { return catalog_; }

  /// Recovery accounting (cumulative since ResetTo).
  uint64_t duplicate_skips() const { return duplicate_skips_; }
  uint64_t resend_requests() const { return resend_requests_; }
  uint64_t backoff_steps() const { return backoff_steps_; }
  uint64_t crash_recoveries() const { return crash_recoveries_; }

  /// The Status behind the last kError step (OK if none).
  const Status& last_error() const { return last_error_; }

 private:
  /// Applies one decoded record to the catalog. Returns non-OK (without
  /// advancing applied_lsn_) if the catalog diverged from the primary.
  Status ApplyRecord(const ShippedRecord& shipped, WorkMeter* meter);

  /// Discards volatile state and re-syncs the delivery queue from the
  /// last durably applied LSN. `meter` is charged the re-shipped tail.
  void Resync(WorkMeter* meter);

  Catalog* catalog_;
  WalStream* stream_;
  const FaultInjector* injector_ = nullptr;
  TimestampOracle oracle_;
  uint64_t applied_lsn_ = 0;

  // Volatile recovery state (lost on crash).
  uint64_t waiting_lsn_ = 0;      // LSN a resend is pending for (0 = none)
  uint32_t resend_attempts_ = 0;  // attempts for waiting_lsn_
  uint32_t backoff_remaining_ = 0;

  uint64_t steps_ = 0;  // apply-step sequence, keys the crash schedule
  uint64_t duplicate_skips_ = 0;
  uint64_t resend_requests_ = 0;
  uint64_t backoff_steps_ = 0;
  uint64_t crash_recoveries_ = 0;
  Status last_error_;
};

}  // namespace hattrick

#endif  // HATTRICK_REPLICATION_REPLICA_H_
