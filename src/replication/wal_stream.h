#ifndef HATTRICK_REPLICATION_WAL_STREAM_H_
#define HATTRICK_REPLICATION_WAL_STREAM_H_

#include <cstdint>
#include <deque>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"

#include "common/statusor.h"
#include "fault/fault_injector.h"
#include "txn/wal.h"

namespace hattrick {

/// Streaming-replication modes, mirroring PostgreSQL's
/// `synchronous_commit` settings evaluated in Section 6.3:
///  - kAsync: commit returns after the local apply; records ship later.
///  - kSyncShip ("ON"): commit returns once the record is shipped to and
///    durably written by the standby; the standby *replays* it later, so
///    analytical queries can observe a stale snapshot (freshness > 0).
///  - kRemoteApply ("RA"): commit returns only after the standby has
///    replayed the record; freshness is always zero at the cost of
///    transaction latency.
enum class ReplicationMode { kAsync, kSyncShip, kRemoteApply };

/// Returns "ASYNC", "ON" or "REMOTE_APPLY".
const char* ReplicationModeName(ReplicationMode mode);

/// One decoded record handed to the applier, with the size of its wire
/// encoding so apply-path metering never has to re-encode it.
struct ShippedRecord {
  WalRecord record;
  size_t encoded_size = 0;
};

/// A WAL shipping channel from a primary to one standby that survives an
/// unreliable network. The primary's TxnManager appends committed records
/// (WalSink); the standby's applier consumes them.
///
/// Two queues model the channel:
///  - a *retention buffer* of every record the standby has not yet
///    acknowledged (the authoritative log tail, always contiguous), and
///  - a *delivery queue* of what the network actually handed over, which
///    an attached FaultInjector can corrupt with drops, duplicates and
///    reordering.
/// The applier detects gaps in the delivery queue (Peek returns
/// kOutOfRange) and requests retransmission from the retention buffer;
/// Acknowledge() trims the buffer once records are durably applied. The
/// buffer is bounded operationally by backpressure: its depth is the
/// backlog signal the isolated engine uses to throttle commits, so a
/// healthy system keeps it near the ship/apply lag instead of letting it
/// grow without bound.
///
/// No method asserts on out-of-order, duplicate or missing records; every
/// anomaly is reported as a Status and is recoverable.
class WalStream final : public WalSink {
 public:
  WalStream() = default;

  /// Attaches the network fault model (nullptr = reliable delivery).
  /// Not owned; must outlive the stream or be detached first.
  void SetFaultInjector(const FaultInjector* injector);

  /// WalSink: appends the record in commit order. Records at or below
  /// head_lsn() are re-delivered commits and are ignored (idempotent).
  void OnCommit(const WalRecord& record) override;

  /// Returns the next delivered record given that the applier has
  /// durably applied through `applied_lsn`:
  ///  - OK: the front record. Its LSN is either applied_lsn + 1 (apply
  ///    it) or <= applied_lsn (a duplicate delivery; skip and Consume).
  ///  - kNotFound: fully caught up (nothing shipped beyond applied_lsn).
  ///  - kOutOfRange: a gap — the record applied_lsn + 1 was lost in
  ///    flight (or the delivery queue front is beyond it). The applier
  ///    should RequestResend(applied_lsn + 1).
  StatusOr<ShippedRecord> Peek(uint64_t applied_lsn) const;

  /// Pops the front of the delivery queue; `lsn` must match its LSN
  /// (returns InvalidArgument otherwise, without popping).
  Status Consume(uint64_t lsn);

  /// Marks everything through `lsn` durably applied: the retention
  /// buffer drops those records (they can no longer be re-requested).
  void Acknowledge(uint64_t lsn);

  /// Requests retransmission of `lsn` (attempt is the applier's 1-based
  /// retry count, forwarded to the fault model so repeated attempts are
  /// independent draws). On success the record is pushed to the *front*
  /// of the delivery queue. The retransmission itself may be lost to an
  /// injected fault — that still returns OK, exactly as a real sender
  /// cannot tell; the applier discovers the loss on its next Peek and
  /// retries with backoff. Returns kNotFound if `lsn` was already
  /// acknowledged (nothing to resend) or never shipped.
  Status RequestResend(uint64_t lsn, uint64_t attempt);

  /// Crash recovery: drops the delivery queue and re-delivers every
  /// retained record above `applied_lsn` in order, bypassing the fault
  /// model (a fresh connection with reliable framing — this is the
  /// escalation path that guarantees convergence under any schedule).
  /// Returns the number of records re-delivered.
  size_t ResyncFrom(uint64_t applied_lsn);

  /// LSN of the newest appended record (0 if none ever appended).
  uint64_t head_lsn() const;

  /// Number of shipped-but-unapplied records after `applied_lsn`.
  size_t PendingAfter(uint64_t applied_lsn) const;

  /// Depth of the retention (retransmit) buffer: records shipped but not
  /// yet acknowledged. This is the backpressure signal.
  size_t RetainedRecords() const;

  /// Total encoded bytes appended since construction/reset.
  uint64_t shipped_bytes() const;

  /// Fault/recovery accounting (cumulative since Reset).
  uint64_t injected_drops() const;
  uint64_t injected_duplicates() const;
  uint64_t injected_reorders() const;
  uint64_t resends_requested() const;
  uint64_t resends_delivered() const;
  uint64_t resends_lost() const;

  /// Clears the stream, including fault counters (benchmark reset).
  void Reset();

 private:
  struct Entry {
    uint64_t lsn = 0;
    std::string bytes;
  };

  mutable Mutex mutex_;
  const FaultInjector* injector_ GUARDED_BY(mutex_) = nullptr;
  /// Unacked log tail, contiguous LSNs.
  std::deque<Entry> retained_ GUARDED_BY(mutex_);
  /// Network view: gaps/dups/reorders possible.
  std::deque<Entry> delivery_ GUARDED_BY(mutex_);
  /// Reorder fault: record held back one slot.
  Entry held_ GUARDED_BY(mutex_);
  bool hold_pending_ GUARDED_BY(mutex_) = false;
  uint64_t head_lsn_ GUARDED_BY(mutex_) = 0;
  uint64_t acked_lsn_ GUARDED_BY(mutex_) = 0;
  uint64_t shipped_bytes_ GUARDED_BY(mutex_) = 0;
  uint64_t injected_drops_ GUARDED_BY(mutex_) = 0;
  uint64_t injected_duplicates_ GUARDED_BY(mutex_) = 0;
  uint64_t injected_reorders_ GUARDED_BY(mutex_) = 0;
  uint64_t resends_requested_ GUARDED_BY(mutex_) = 0;
  uint64_t resends_delivered_ GUARDED_BY(mutex_) = 0;
  uint64_t resends_lost_ GUARDED_BY(mutex_) = 0;
};

}  // namespace hattrick

#endif  // HATTRICK_REPLICATION_WAL_STREAM_H_
