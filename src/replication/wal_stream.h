#ifndef HATTRICK_REPLICATION_WAL_STREAM_H_
#define HATTRICK_REPLICATION_WAL_STREAM_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "txn/wal.h"

namespace hattrick {

/// Streaming-replication modes, mirroring PostgreSQL's
/// `synchronous_commit` settings evaluated in Section 6.3:
///  - kAsync: commit returns after the local apply; records ship later.
///  - kSyncShip ("ON"): commit returns once the record is shipped to and
///    durably written by the standby; the standby *replays* it later, so
///    analytical queries can observe a stale snapshot (freshness > 0).
///  - kRemoteApply ("RA"): commit returns only after the standby has
///    replayed the record; freshness is always zero at the cost of
///    transaction latency.
enum class ReplicationMode { kAsync, kSyncShip, kRemoteApply };

/// Returns "ASYNC", "ON" or "REMOTE_APPLY".
const char* ReplicationModeName(ReplicationMode mode);

/// An in-order, in-memory WAL shipping channel from a primary to one
/// standby. The primary's TxnManager appends committed records (WalSink);
/// the standby's applier consumes them. Records are round-tripped through
/// their binary encoding so shipped bytes are what the cost model charges
/// for network/disk work.
class WalStream final : public WalSink {
 public:
  WalStream() = default;

  /// WalSink: appends the record in commit order.
  void OnCommit(const WalRecord& record) override;

  /// Returns the next unconsumed record after `applied_lsn`, or nullopt
  /// if the stream is drained. Does not consume; call Consume after a
  /// successful apply.
  std::optional<WalRecord> Peek(uint64_t applied_lsn) const;

  /// Drops the front record; `lsn` must equal its LSN (sanity check).
  void Consume(uint64_t lsn);

  /// LSN of the newest appended record (0 if none ever appended).
  uint64_t head_lsn() const;

  /// Number of shipped-but-unapplied records after `applied_lsn`.
  size_t PendingAfter(uint64_t applied_lsn) const;

  /// Total encoded bytes appended since construction/reset.
  uint64_t shipped_bytes() const;

  /// Clears the stream (benchmark reset).
  void Reset();

 private:
  mutable std::mutex mutex_;
  std::deque<std::string> encoded_;  // FIFO of encoded records
  uint64_t head_lsn_ = 0;
  uint64_t front_lsn_ = 0;  // LSN of encoded_.front() when non-empty
  uint64_t shipped_bytes_ = 0;
};

}  // namespace hattrick

#endif  // HATTRICK_REPLICATION_WAL_STREAM_H_
