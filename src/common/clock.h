#ifndef HATTRICK_COMMON_CLOCK_H_
#define HATTRICK_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace hattrick {

/// A point in time in seconds. Both the wall clock and the virtual
/// simulation clock report in this unit; freshness scores are differences
/// of TimePoints (the paper reports freshness in seconds).
using TimePoint = double;

/// Abstract clock used by the benchmark driver so the same driver code
/// runs against wall time (threaded mode) and virtual time (simulation).
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in seconds since an arbitrary epoch.
  virtual TimePoint Now() const = 0;
};

/// Steady wall clock.
class WallClock final : public Clock {
 public:
  WallClock() : epoch_(std::chrono::steady_clock::now()) {}

  TimePoint Now() const override {
    const auto d = std::chrono::steady_clock::now() - epoch_;
    return std::chrono::duration<double>(d).count();
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
};

/// Manually advanced clock; the simulation scheduler owns and advances it.
class VirtualClock final : public Clock {
 public:
  TimePoint Now() const override { return now_; }
  void AdvanceTo(TimePoint t) { now_ = t; }

 private:
  TimePoint now_ = 0.0;
};

}  // namespace hattrick

#endif  // HATTRICK_COMMON_CLOCK_H_
