#include "common/value.h"

#include <cstdio>

namespace hattrick {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

int Value::Compare(const Value& other) const {
  // Numeric types compare with each other; strings only with strings.
  if (is_string() || other.is_string()) {
    if (is_string() && other.is_string()) {
      const int c = AsString().compare(other.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    // Mixed string/number: order by type tag (numbers before strings).
    return is_string() ? 1 : -1;
  }
  if (is_int() && other.is_int()) {
    const int64_t a = AsInt();
    const int64_t b = other.AsInt();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  const double a = AsDouble();
  const double b = other.AsDouble();
  return a < b ? -1 : (a > b ? 1 : 0);
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kInt64:
      return std::to_string(AsInt());
    case DataType::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.4f", AsDouble());
      return buf;
    }
    case DataType::kString:
      return AsString();
  }
  return "?";
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace hattrick
