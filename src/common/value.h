#ifndef HATTRICK_COMMON_VALUE_H_
#define HATTRICK_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace hattrick {

/// Column data types supported by the storage and execution layers.
///
/// Dates are stored as kInt64 in yyyymmdd form (SSB convention); decimals
/// are stored as kDouble (sufficient for benchmark aggregates).
enum class DataType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
};

/// Returns "INT64", "DOUBLE" or "STRING".
const char* DataTypeName(DataType type);

/// A dynamically typed scalar cell. Rows in the row store and literals in
/// expressions are built from Values. Columnar storage uses typed vectors
/// instead (see storage/column_table.h).
class Value {
 public:
  Value() : v_(int64_t{0}) {}
  Value(int64_t v) : v_(v) {}             // NOLINT
  Value(int v) : v_(int64_t{v}) {}        // NOLINT
  Value(double v) : v_(v) {}              // NOLINT
  Value(std::string v) : v_(std::move(v)) {}  // NOLINT
  Value(const char* v) : v_(std::string(v)) {}  // NOLINT

  DataType type() const { return static_cast<DataType>(v_.index()); }

  bool is_int() const { return type() == DataType::kInt64; }
  bool is_double() const { return type() == DataType::kDouble; }
  bool is_string() const { return type() == DataType::kString; }

  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDouble() const {
    return is_int() ? static_cast<double>(AsInt()) : std::get<double>(v_);
  }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// Three-way comparison. Values of different types order by type tag;
  /// ints and doubles compare numerically.
  int Compare(const Value& other) const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.Compare(b) == 0;
  }
  friend bool operator<(const Value& a, const Value& b) {
    return a.Compare(b) < 0;
  }

  /// Renders the value for debugging and report output.
  std::string ToString() const;

 private:
  std::variant<int64_t, double, std::string> v_;
};

/// A tuple of cells; the unit of the row store and of query results.
using Row = std::vector<Value>;

/// Renders "(v1, v2, ...)".
std::string RowToString(const Row& row);

}  // namespace hattrick

#endif  // HATTRICK_COMMON_VALUE_H_
