#ifndef HATTRICK_COMMON_MUTEX_H_
#define HATTRICK_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace hattrick {

/// Annotated mutex wrappers. All synchronization in src/ goes through
/// these types so Clang Thread-Safety Analysis (-Wthread-safety, the
/// HATTRICK_ANALYZE=ON build) can prove lock/data associations at compile
/// time; raw std::mutex / std::shared_mutex / std::lock_guard use outside
/// this file is rejected by the `raw-lock` rule of
/// tools/lint/hattrick_lint.py.
///
/// The wrappers add no state and no behaviour: they compile to the same
/// code as the std primitives they wrap. Scoped-lock idioms:
///
///   MutexLock lock(&mutex_);              // exclusive std::mutex hold
///   SharedMutexLock lock(&latch_);        // exclusive (writer) hold
///   SharedReaderLock lock(&latch_);       // shared (reader) hold
///
/// Condition waiting keeps the Mutex capability held across the wait:
///
///   MutexLock lock(&mutex_);
///   while (!predicate_)                   // predicate_ GUARDED_BY(mutex_)
///     cv_.Wait(&mutex_);
///
/// Lock-order discipline: a function that must hold two peer locks at
/// once (e.g. {Row,Column,BTree}::CopyFrom between two tables of the same
/// type) acquires them in address order via explicit Lock()/Unlock()
/// calls — the analysis checks the hold set, the address order prevents
/// the inversion.

/// Annotated std::mutex.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Annotated std::shared_mutex (reader-writer latch).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive hold of a Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() RELEASE() { mu_->Unlock(); }

 private:
  Mutex* const mu_;
};

/// RAII exclusive (writer) hold of a SharedMutex.
class SCOPED_CAPABILITY SharedMutexLock {
 public:
  explicit SharedMutexLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  SharedMutexLock(const SharedMutexLock&) = delete;
  SharedMutexLock& operator=(const SharedMutexLock&) = delete;
  ~SharedMutexLock() RELEASE() { mu_->Unlock(); }

 private:
  SharedMutex* const mu_;
};

/// RAII shared (reader) hold of a SharedMutex.
class SCOPED_CAPABILITY SharedReaderLock {
 public:
  explicit SharedReaderLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  SharedReaderLock(const SharedReaderLock&) = delete;
  SharedReaderLock& operator=(const SharedReaderLock&) = delete;
  ~SharedReaderLock() RELEASE() { mu_->UnlockShared(); }

 private:
  SharedMutex* const mu_;
};

/// Condition variable paired with Mutex. Wait() requires the capability
/// so the analysis knows guarded predicates may be read in the wait loop;
/// the capability is logically held across the wait (the wait re-acquires
/// before returning, exactly like std::condition_variable).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `*mu`, blocks until notified, re-acquires `*mu`.
  /// Spurious wakeups are possible — always wait in a predicate loop.
  void Wait(Mutex* mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // the caller's scope still owns the re-acquired lock
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace hattrick

#endif  // HATTRICK_COMMON_MUTEX_H_
