#ifndef HATTRICK_COMMON_RNG_H_
#define HATTRICK_COMMON_RNG_H_

#include <cassert>
#include <cstdint>

namespace hattrick {

/// Deterministic, fast pseudo-random number generator (xoshiro256**).
///
/// Every randomized component of the library (data generator, workload
/// drivers, query parameter selection) takes an explicit seed so that runs
/// are reproducible bit-for-bit.
class Rng {
 public:
  /// Seeds the generator with splitmix64 expansion of `seed`.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seeds the generator.
  void Seed(uint64_t seed) {
    // splitmix64 to fill state; avoids the all-zero state.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s_[i] = z ^ (z >> 31);
    }
  }

  /// Returns the next 64 random bits.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Returns a uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
    return lo + static_cast<int64_t>(Next() % range);
  }

  /// Returns a uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Derives an independent generator for a sub-stream (e.g. per client).
  Rng Fork(uint64_t stream) {
    return Rng(Next() ^ (stream * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL));
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace hattrick

#endif  // HATTRICK_COMMON_RNG_H_
