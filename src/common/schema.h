#ifndef HATTRICK_COMMON_SCHEMA_H_
#define HATTRICK_COMMON_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace hattrick {

/// Definition of one column: a name and a type.
struct ColumnDef {
  std::string name;
  DataType type;
};

/// An ordered list of columns with by-name lookup. Schemas are value types
/// and are cheap to copy relative to table data.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns);

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Returns the ordinal of `name`, or -1 if absent.
  int FindColumn(const std::string& name) const;

  /// Returns the ordinal of `name`; asserts that the column exists.
  /// Convenience for benchmark code where schemas are static.
  size_t ColumnIndex(const std::string& name) const;

  /// Verifies that `row` has the right arity and cell types.
  Status ValidateRow(const Row& row) const;

  /// Renders "name:TYPE, ..." for debugging.
  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
  std::unordered_map<std::string, size_t> by_name_;
};

}  // namespace hattrick

#endif  // HATTRICK_COMMON_SCHEMA_H_
