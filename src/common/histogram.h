#ifndef HATTRICK_COMMON_HISTOGRAM_H_
#define HATTRICK_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <string>
#include <vector>

namespace hattrick {

/// Accumulates samples (latencies, freshness scores) and answers mean,
/// percentile, and CDF queries. Exact (stores samples); benchmark runs
/// produce at most a few hundred thousand samples per series.
class Sampler {
 public:
  Sampler() = default;

  void Add(double sample) { samples_.push_back(sample); sorted_ = false; }
  void Clear() { samples_.clear(); sorted_ = false; }

  /// Adds every sample of `other` to this sampler (e.g. combining
  /// per-thread samplers after a run).
  void Merge(const Sampler& other);

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Sum() const;
  double Mean() const;
  double Min() const;
  double Max() const;

  /// Returns the p-quantile (p in [0,1]) using nearest-rank on the sorted
  /// samples; e.g. Percentile(0.99) is the 99th percentile.
  double Percentile(double p) const;

  /// Returns the fraction of samples <= x.
  double CdfAt(double x) const;

  /// Returns (x, F(x)) pairs at each distinct sample value, suitable for
  /// plotting an empirical CDF.
  std::vector<std::pair<double, double>> Cdf() const;

  /// All samples, sorted ascending.
  const std::vector<double>& sorted_samples() const;

 private:
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// The tail-latency triple every reporting surface prints (seconds;
/// zeros when the series is empty).
struct LatencySummary {
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

inline LatencySummary Summarize(const Sampler& sampler) {
  LatencySummary out;
  if (!sampler.empty()) {
    out.p50 = sampler.Percentile(0.50);
    out.p95 = sampler.Percentile(0.95);
    out.p99 = sampler.Percentile(0.99);
  }
  return out;
}

}  // namespace hattrick

#endif  // HATTRICK_COMMON_HISTOGRAM_H_
