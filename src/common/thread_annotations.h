#ifndef HATTRICK_COMMON_THREAD_ANNOTATIONS_H_
#define HATTRICK_COMMON_THREAD_ANNOTATIONS_H_

/// Clang Thread-Safety-Analysis annotation macros (the Abseil/LLVM macro
/// set, trimmed to what this codebase uses). Under Clang with
/// -Wthread-safety (the HATTRICK_ANALYZE=ON build, see the top-level
/// CMakeLists.txt and scripts/check.sh analyze) these attach capability
/// attributes that let the compiler prove, per translation unit, that
///  - data annotated GUARDED_BY(mu) is only touched with `mu` held,
///  - functions annotated REQUIRES(mu) are only called with `mu` held,
///  - locks are released on every path that acquired them.
/// On every other compiler (the container toolchain is GCC) they expand
/// to nothing, so the annotations are pure documentation there.
///
/// Conventions (see DESIGN.md "Static analysis & sanitizers"):
///  - Every mutex in src/ is a hattrick::Mutex or hattrick::SharedMutex
///    (common/mutex.h), never a raw std type — enforced by the
///    `raw-lock` rule of tools/lint/hattrick_lint.py.
///  - Every member field a mutex protects carries GUARDED_BY(that_mutex).
///  - Private helpers called with a lock already held carry
///    REQUIRES(mu) / REQUIRES_SHARED(mu) instead of re-locking.
///  - Public entry points that take a lock internally carry EXCLUDES(mu)
///    so accidental re-entry under the lock is a compile error.

#if defined(__clang__) && !defined(SWIG)
#define HATTRICK_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define HATTRICK_THREAD_ANNOTATION__(x)  // no-op off Clang
#endif

/// Declares a class to be a capability (lockable) type. The string names
/// the capability kind in diagnostics ("mutex", "shared mutex", "role").
#define CAPABILITY(x) HATTRICK_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII class that acquires a capability in its constructor
/// and releases it in its destructor.
#define SCOPED_CAPABILITY HATTRICK_THREAD_ANNOTATION__(scoped_lockable)

/// Declares that a data member may only be accessed while holding the
/// given capability.
#define GUARDED_BY(x) HATTRICK_THREAD_ANNOTATION__(guarded_by(x))

/// Declares that the *pointee* of a pointer member may only be accessed
/// while holding the given capability (the pointer itself is free).
#define PT_GUARDED_BY(x) HATTRICK_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Declares that callers must hold the capability exclusively before
/// calling, and still hold it after the call returns.
#define REQUIRES(...) \
  HATTRICK_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Like REQUIRES but a shared (reader) hold suffices.
#define REQUIRES_SHARED(...) \
  HATTRICK_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Declares that the function acquires the capability exclusively and
/// does not release it before returning.
#define ACQUIRE(...) \
  HATTRICK_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Shared-mode ACQUIRE.
#define ACQUIRE_SHARED(...) \
  HATTRICK_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// Declares that the function releases the (exclusively held) capability.
#define RELEASE(...) \
  HATTRICK_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Shared-mode RELEASE.
#define RELEASE_SHARED(...) \
  HATTRICK_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

/// Releases a capability regardless of the mode it was acquired in
/// (destructors of scoped locks that may hold either mode).
#define RELEASE_GENERIC(...) \
  HATTRICK_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))

/// Declares a try-lock: acquires the capability iff the function returns
/// the given value.
#define TRY_ACQUIRE(...) \
  HATTRICK_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Declares a static lock-order edge: this mutex member is always
/// acquired before the named one(s). Feeds Clang TSA's -Wthread-safety
/// ordering diagnostics and the whole-program lock graph built by
/// tools/analyzer/hattrick_analyzer.py (lock-order-cycle pass), which
/// merges declared edges with observed acquisition sites.
#define ACQUIRED_BEFORE(...) \
  HATTRICK_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))

/// The reverse declaration: this mutex member is always acquired after
/// the named one(s).
#define ACQUIRED_AFTER(...) \
  HATTRICK_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// Declares that callers must NOT hold the capability (the function
/// acquires it itself; calling with it held would deadlock or violate
/// the guard-lifetime contract).
#define EXCLUDES(...) HATTRICK_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Asserts at runtime (by contract, not by code) that the calling thread
/// holds the capability; teaches the analysis about externally
/// synchronized call sites.
#define ASSERT_CAPABILITY(x) \
  HATTRICK_THREAD_ANNOTATION__(assert_capability(x))

/// Declares that the function returns a reference to the given capability
/// (accessor functions exposing a member mutex).
#define RETURN_CAPABILITY(x) HATTRICK_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: turns the analysis off for one function. Used only where
/// the locking pattern is beyond the analysis (none needed in src/engine;
/// see the acceptance criteria of the static-analysis PR).
#define NO_THREAD_SAFETY_ANALYSIS \
  HATTRICK_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // HATTRICK_COMMON_THREAD_ANNOTATIONS_H_
