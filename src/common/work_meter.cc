#include "common/work_meter.h"

#include <cstdio>

namespace hattrick {

std::string WorkMeter::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "WorkMeter{rows_read=%llu rows_written=%llu index_nodes=%llu "
      "index_writes=%llu column_values=%llu output_rows=%llu "
      "hash_probes=%llu wal_records=%llu wal_bytes=%llu merged_rows=%llu "
      "version_hops=%llu predicate_locks=%llu conflict_waits=%llu}",
      static_cast<unsigned long long>(rows_read),
      static_cast<unsigned long long>(rows_written),
      static_cast<unsigned long long>(index_nodes),
      static_cast<unsigned long long>(index_writes),
      static_cast<unsigned long long>(column_values),
      static_cast<unsigned long long>(output_rows),
      static_cast<unsigned long long>(hash_probes),
      static_cast<unsigned long long>(wal_records),
      static_cast<unsigned long long>(wal_bytes),
      static_cast<unsigned long long>(merged_rows),
      static_cast<unsigned long long>(version_hops),
      static_cast<unsigned long long>(predicate_locks),
      static_cast<unsigned long long>(conflict_waits));
  return buf;
}

}  // namespace hattrick
