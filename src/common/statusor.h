#ifndef HATTRICK_COMMON_STATUSOR_H_
#define HATTRICK_COMMON_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace hattrick {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value is absent, modeled after absl::StatusOr.
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. `status` must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }
  /// Constructs from a value; the status is OK.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Accessors require ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a StatusOr<T>), propagating a non-OK status, otherwise
/// move-assigns the value into `lhs`.
#define HATTRICK_ASSIGN_OR_RETURN(lhs, rexpr)      \
  auto _statusor_##__LINE__ = (rexpr);             \
  if (!_statusor_##__LINE__.ok())                  \
    return _statusor_##__LINE__.status();          \
  lhs = std::move(_statusor_##__LINE__).value()

}  // namespace hattrick

#endif  // HATTRICK_COMMON_STATUSOR_H_
