#ifndef HATTRICK_COMMON_STATUS_H_
#define HATTRICK_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace hattrick {

/// Error categories used throughout the library. The library does not use
/// exceptions; all fallible operations return a Status or StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kAborted,         // transaction aborted (conflict, validation failure)
  kOutOfRange,
  kInternal,
  kUnimplemented,
};

/// Returns a human-readable name for a StatusCode (e.g. "ABORTED").
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error result, modeled after absl::Status.
///
/// Usage:
///   Status s = table.Insert(row);
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Returns "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK status to the caller.
#define HATTRICK_RETURN_IF_ERROR(expr)             \
  do {                                             \
    ::hattrick::Status _status = (expr);           \
    if (!_status.ok()) return _status;             \
  } while (0)

}  // namespace hattrick

#endif  // HATTRICK_COMMON_STATUS_H_
