#include "common/schema.h"

#include <cassert>

namespace hattrick {

Schema::Schema(std::vector<ColumnDef> columns) : columns_(std::move(columns)) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    by_name_.emplace(columns_[i].name, i);
  }
}

int Schema::FindColumn(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? -1 : static_cast<int>(it->second);
}

size_t Schema::ColumnIndex(const std::string& name) const {
  const int i = FindColumn(name);
  assert(i >= 0 && "unknown column");
  return static_cast<size_t>(i);
}

Status Schema::ValidateRow(const Row& row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(columns_.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].type() != columns_[i].type) {
      return Status::InvalidArgument(
          "column " + columns_[i].name + " expects " +
          DataTypeName(columns_[i].type) + " got " +
          DataTypeName(row[i].type()));
    }
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ":";
    out += DataTypeName(columns_[i].type);
  }
  return out;
}

}  // namespace hattrick
