#ifndef HATTRICK_COMMON_KEY_ENCODING_H_
#define HATTRICK_COMMON_KEY_ENCODING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/value.h"

namespace hattrick {

/// Order-preserving ("memcomparable") key encoding.
///
/// Index keys are encoded into byte strings such that the lexicographic
/// byte order of the encodings equals the logical order of the composite
/// keys. This lets the B+-tree compare keys with memcmp, the standard
/// technique in storage engines (MyRocks, CockroachDB, TiKV).
///
/// Encodings:
///  - int64:  8 big-endian bytes with the sign bit flipped.
///  - double: IEEE bits, sign-flipped for positives / fully inverted for
///            negatives (total order for non-NaN values).
///  - string: escaped with 0x00 -> 0x00 0xFF, terminated by 0x00 0x00, so
///            that prefixes order before extensions and embedded zeros are
///            unambiguous.
namespace key {

/// Appends the encoding of an int64 to `out`.
void EncodeInt64(int64_t v, std::string* out);

/// Appends the encoding of a double to `out`.
void EncodeDouble(double v, std::string* out);

/// Appends the encoding of a string to `out`.
void EncodeString(const std::string& v, std::string* out);

/// Appends the encoding of a dynamically typed value to `out`.
void EncodeValue(const Value& v, std::string* out);

/// Encodes a composite key from `values`.
std::string EncodeKey(const std::vector<Value>& values);

/// Decoding counterparts; `pos` is advanced past the consumed bytes.
/// Decoding is used by tests and debugging tools, not the hot path.
int64_t DecodeInt64(const std::string& in, size_t* pos);
double DecodeDouble(const std::string& in, size_t* pos);
std::string DecodeString(const std::string& in, size_t* pos);

/// Returns the smallest key that is strictly greater than every key having
/// `prefix` as a prefix (used for prefix range scans). Returns empty string
/// if no such key exists (prefix is all 0xFF).
std::string PrefixSuccessor(const std::string& prefix);

}  // namespace key
}  // namespace hattrick

#endif  // HATTRICK_COMMON_KEY_ENCODING_H_
