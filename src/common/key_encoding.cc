#include "common/key_encoding.h"

#include <cassert>
#include <cstring>

namespace hattrick {
namespace key {

void EncodeInt64(int64_t v, std::string* out) {
  // Flip the sign bit so that negative values order before positive ones
  // under unsigned byte comparison, then store big-endian.
  uint64_t u = static_cast<uint64_t>(v) ^ (1ULL << 63);
  char buf[8];
  for (int i = 7; i >= 0; --i) {
    buf[i] = static_cast<char>(u & 0xff);
    u >>= 8;
  }
  out->append(buf, 8);
}

void EncodeDouble(double v, std::string* out) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  if (bits >> 63) {
    bits = ~bits;  // negative: invert all bits
  } else {
    bits ^= (1ULL << 63);  // positive: flip sign bit
  }
  char buf[8];
  for (int i = 7; i >= 0; --i) {
    buf[i] = static_cast<char>(bits & 0xff);
    bits >>= 8;
  }
  out->append(buf, 8);
}

void EncodeString(const std::string& v, std::string* out) {
  for (char c : v) {
    if (c == '\0') {
      out->push_back('\0');
      out->push_back('\xff');
    } else {
      out->push_back(c);
    }
  }
  out->push_back('\0');
  out->push_back('\0');
}

void EncodeValue(const Value& v, std::string* out) {
  switch (v.type()) {
    case DataType::kInt64:
      EncodeInt64(v.AsInt(), out);
      return;
    case DataType::kDouble:
      EncodeDouble(v.AsDouble(), out);
      return;
    case DataType::kString:
      EncodeString(v.AsString(), out);
      return;
  }
}

std::string EncodeKey(const std::vector<Value>& values) {
  std::string out;
  for (const Value& v : values) EncodeValue(v, &out);
  return out;
}

int64_t DecodeInt64(const std::string& in, size_t* pos) {
  assert(*pos + 8 <= in.size());
  uint64_t u = 0;
  for (int i = 0; i < 8; ++i) {
    u = (u << 8) | static_cast<uint8_t>(in[*pos + i]);
  }
  *pos += 8;
  return static_cast<int64_t>(u ^ (1ULL << 63));
}

double DecodeDouble(const std::string& in, size_t* pos) {
  assert(*pos + 8 <= in.size());
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits = (bits << 8) | static_cast<uint8_t>(in[*pos + i]);
  }
  *pos += 8;
  if (bits >> 63) {
    bits ^= (1ULL << 63);
  } else {
    bits = ~bits;
  }
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string DecodeString(const std::string& in, size_t* pos) {
  std::string out;
  size_t i = *pos;
  while (i + 1 < in.size() || i < in.size()) {
    const char c = in[i];
    if (c == '\0') {
      assert(i + 1 < in.size());
      const char next = in[i + 1];
      i += 2;
      if (next == '\0') break;  // terminator
      out.push_back('\0');
    } else {
      out.push_back(c);
      ++i;
    }
  }
  *pos = i;
  return out;
}

std::string PrefixSuccessor(const std::string& prefix) {
  std::string out = prefix;
  while (!out.empty()) {
    if (static_cast<uint8_t>(out.back()) != 0xff) {
      out.back() = static_cast<char>(static_cast<uint8_t>(out.back()) + 1);
      return out;
    }
    out.pop_back();
  }
  return out;  // empty: no successor
}

}  // namespace key
}  // namespace hattrick
