#ifndef HATTRICK_COMMON_WORK_METER_H_
#define HATTRICK_COMMON_WORK_METER_H_

#include <cstdint>
#include <string>

namespace hattrick {

/// Counts the abstract work performed by one storage/engine operation.
///
/// The storage and execution layers increment these counters as they run;
/// the simulation layer converts them into virtual service time via a
/// CostModel (see sim/cost_model.h). This is how the reproduction replaces
/// the paper's wall-clock measurements on a 32-core server with
/// deterministic virtual-time measurements: correctness, contention,
/// aborts and replication lag come from real execution, only *time* is
/// modeled.
struct WorkMeter {
  uint64_t rows_read = 0;        // row-store row versions materialized
  uint64_t rows_written = 0;     // row-store inserts + new versions
  uint64_t index_nodes = 0;      // B+-tree nodes visited (reads + writes)
  uint64_t index_writes = 0;     // B+-tree entry insertions/removals
  uint64_t column_values = 0;    // columnar cells scanned
  uint64_t output_rows = 0;      // rows produced by query operators
  uint64_t hash_probes = 0;      // hash-table build/probe operations
  uint64_t wal_records = 0;      // WAL records produced or replayed
  uint64_t wal_bytes = 0;        // encoded WAL bytes produced or replayed
  uint64_t merged_rows = 0;      // delta rows merged into a column store
  uint64_t version_hops = 0;     // MVCC version-chain entries traversed
  uint64_t predicate_locks = 0;  // serializable read-tracking entries
  uint64_t conflict_waits = 0;   // lock/validation conflicts encountered

  void Reset() { *this = WorkMeter{}; }

  WorkMeter& operator+=(const WorkMeter& o) {
    rows_read += o.rows_read;
    rows_written += o.rows_written;
    index_nodes += o.index_nodes;
    index_writes += o.index_writes;
    column_values += o.column_values;
    output_rows += o.output_rows;
    hash_probes += o.hash_probes;
    wal_records += o.wal_records;
    wal_bytes += o.wal_bytes;
    merged_rows += o.merged_rows;
    version_hops += o.version_hops;
    predicate_locks += o.predicate_locks;
    conflict_waits += o.conflict_waits;
    return *this;
  }

  /// Sum of every counter except `wal_bytes`. The other counters all
  /// count *operations* of comparable magnitude, so their sum is a useful
  /// "did any work happen / how much" scalar for tests and assertions;
  /// `wal_bytes` counts *bytes* (hundreds per record) and would swamp the
  /// operation counts. The cost model still charges bytes explicitly
  /// (CostModel::us_wal_byte and the ship delay), so nothing is lost by
  /// excluding them here.
  uint64_t Total() const {
    return rows_read + rows_written + index_nodes + index_writes +
           column_values + output_rows + hash_probes + wal_records +
           merged_rows + version_hops + predicate_locks + conflict_waits;
  }

  std::string ToString() const;
};

}  // namespace hattrick

#endif  // HATTRICK_COMMON_WORK_METER_H_
