#include "common/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace hattrick {

void Sampler::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

void Sampler::Merge(const Sampler& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
}

double Sampler::Sum() const {
  return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double Sampler::Mean() const { return empty() ? 0.0 : Sum() / count(); }

double Sampler::Min() const {
  assert(!empty());
  EnsureSorted();
  return samples_.front();
}

double Sampler::Max() const {
  assert(!empty());
  EnsureSorted();
  return samples_.back();
}

double Sampler::Percentile(double p) const {
  if (empty()) return 0.0;
  EnsureSorted();
  p = std::clamp(p, 0.0, 1.0);
  // Nearest-rank: smallest index i with (i+1)/n >= p.
  const size_t rank =
      static_cast<size_t>(std::ceil(p * static_cast<double>(count())));
  const size_t idx = rank == 0 ? 0 : rank - 1;
  return samples_[std::min(idx, count() - 1)];
}

double Sampler::CdfAt(double x) const {
  if (empty()) return 0.0;
  EnsureSorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(count());
}

std::vector<std::pair<double, double>> Sampler::Cdf() const {
  std::vector<std::pair<double, double>> out;
  if (empty()) return out;
  EnsureSorted();
  for (size_t i = 0; i < samples_.size(); ++i) {
    // Emit one point per distinct value, at its final cumulative fraction.
    if (i + 1 == samples_.size() || samples_[i + 1] != samples_[i]) {
      out.emplace_back(samples_[i], static_cast<double>(i + 1) /
                                        static_cast<double>(count()));
    }
  }
  return out;
}

const std::vector<double>& Sampler::sorted_samples() const {
  EnsureSorted();
  return samples_;
}

}  // namespace hattrick
