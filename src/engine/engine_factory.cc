#include "engine/engine_factory.h"

#include "engine/hybrid_engine.h"
#include "engine/isolated_engine.h"
#include "engine/shared_engine.h"

namespace hattrick {

std::unique_ptr<HtapEngine> MakeSharedEngine(SharedEngineConfig config) {
  return std::make_unique<SharedEngine>(std::move(config));
}

std::unique_ptr<HtapEngine> MakeIsolatedEngine(IsolatedEngineConfig config) {
  return std::make_unique<IsolatedEngine>(std::move(config));
}

std::unique_ptr<HtapEngine> MakeHybridEngine(HybridEngineConfig config) {
  return std::make_unique<HybridEngine>(std::move(config));
}

}  // namespace hattrick
