#ifndef HATTRICK_ENGINE_HTAP_ENGINE_H_
#define HATTRICK_ENGINE_HTAP_ENGINE_H_

#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "common/work_meter.h"
#include "engine/engine_facade.h"
#include "obs/observability.h"
#include "storage/catalog.h"
#include "txn/txn_manager.h"

namespace hattrick {

/// An HTAP database engine: the four facade surfaces callers actually
/// use (engine/engine_facade.h) — transaction execution, analytics
/// sessions, the maintenance pump, replication hooks — plus the
/// administrative lifecycle (create / load / reset) and observability
/// wiring that only drivers and benchmark setup touch.
///
/// Three single-node implementations mirror the paper's design
/// classification (Section 2.2):
///  - SharedEngine: single copy, single engine (PostgreSQL-like).
///  - IsolatedEngine: primary + log-shipped standby (PostgreSQL-SR-like).
///  - HybridEngine: row copy for T, columnar copy for A in one engine
///    (System-X / TiDB-like).
/// The shard layer (src/shard/) composes N of them behind this same
/// interface for horizontal scale-out.
class HtapEngine : public TxnExecutor,
                   public AnalyticsProvider,
                   public MaintenancePump,
                   public ReplicationHooks {
 public:
  ~HtapEngine() override = default;

  virtual const std::string& name() const = 0;

  /// Creates tables and indexes. Must be called exactly once.
  virtual Status Create(const DatabaseSpec& spec) = 0;

  /// Loads initial rows into `table` (before FinishLoad; not replicated
  /// through the WAL, like a base backup).
  virtual Status BulkLoad(const std::string& table,
                          const std::vector<Row>& rows) = 0;

  /// Finalizes loading and snapshots the state for Reset().
  virtual Status FinishLoad() = 0;

  /// Garbage-collects row versions that no possible snapshot can see
  /// (older than the newest committed state). Callers must quiesce
  /// in-flight snapshots first. Returns versions dropped.
  virtual size_t Vacuum() { return 0; }

  /// Restores the state saved by FinishLoad() (benchmark reset between
  /// runs, Section 6.1: "Before each benchmark run we reset the data to
  /// their initial state").
  virtual Status Reset() = 0;

  /// Primary catalog (transactions resolve indexes/tables through it).
  /// Sharded engines expose shard 0's catalog — table ids and index
  /// names are identical on every shard by construction.
  virtual Catalog* primary_catalog() = 0;

  /// The primary's transaction manager (shard 0's for sharded engines).
  virtual TxnManager* txn_manager() = 0;

  /// Attaches (or, with a default-constructed bundle, detaches) run
  /// observability. Wires the txn manager's metrics, the B+-tree split
  /// counters, and the engine-specific hooks (replication gauges, merge
  /// counters/spans, vacuum spans) via OnObservabilityChanged(). Call
  /// after Create(); a driver attaches before a run and detaches after
  /// its final registry snapshot.
  void SetObservability(const obs::Observability& observability) {
    obs_ = observability;
    TxnManager* txns = txn_manager();
    if (txns != nullptr) txns->SetMetrics(obs_.metrics);
    Catalog* catalog = primary_catalog();
    if (catalog != nullptr) {
      obs::Counter* splits =
          obs_.metrics == nullptr
              ? nullptr
              : obs_.metrics->GetCounter(obs::kStoreBtreeSplits);
      for (IndexInfo* index : catalog->AllIndexes()) {
        index->tree->set_split_counter(splits);
      }
    }
    OnObservabilityChanged();
  }

  const obs::Observability& observability() const { return obs_; }

 protected:
  /// Engine-specific observability wiring (replication probes, merge
  /// counters, ...). Called from SetObservability; obs_ is already set.
  virtual void OnObservabilityChanged() {}

  obs::Observability obs_;
};

}  // namespace hattrick

#endif  // HATTRICK_ENGINE_HTAP_ENGINE_H_
