#ifndef HATTRICK_ENGINE_HTAP_ENGINE_H_
#define HATTRICK_ENGINE_HTAP_ENGINE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "common/work_meter.h"
#include "exec/operator.h"
#include "obs/observability.h"
#include "storage/catalog.h"
#include "txn/txn_manager.h"

namespace hattrick {

/// Declarative description of the database: tables plus the physical
/// schema (indexes). The paper's physical-schema experiment (Figure 6b)
/// varies the index list: none / T-accelerating only ("semi") / all.
struct TableSpec {
  std::string name;
  Schema schema;
};

struct IndexSpec {
  std::string name;
  std::string table;
  std::vector<size_t> key_columns;
  bool unique = false;
};

struct DatabaseSpec {
  std::vector<TableSpec> tables;
  std::vector<IndexSpec> indexes;
};

/// What a client must wait for after the local part of a commit finishes.
/// The benchmark driver (wall-clock or virtual-time) resolves the wait:
///  - kNone: commit already complete.
///  - kShipDelay: wait for the record to reach and be written by the
///    standby (PostgreSQL-SR synchronous_commit=ON); duration derived
///    from `bytes` by the cost model.
///  - kReplicaApplied: wait until the standby has replayed `lsn`
///    (synchronous_commit=remote_apply).
struct CommitWait {
  enum class Kind { kNone, kShipDelay, kReplicaApplied };
  Kind kind = Kind::kNone;
  uint64_t lsn = 0;
  uint64_t bytes = 0;
  /// Extra seconds the client is stalled on top of the wait itself:
  /// backpressure when the standby's unacknowledged backlog exceeds its
  /// bound, plus any injected ship-delay fault. Applies to every Kind
  /// (even kNone — async commits are throttled too, or the backlog
  /// would grow without bound exactly when replication is degraded).
  double throttle_s = 0;
};

/// Outcome of one transaction execution (after retries).
struct TxnOutcome {
  Status status;     // OK iff finally committed
  int attempts = 1;  // 1 + number of aborts
  Ts commit_ts = 0;
  uint64_t lsn = 0;
  CommitWait wait;
  /// Rows written ((table_id << 40) | rid); feeds the simulator's
  /// row-lock contention model.
  std::vector<uint64_t> write_keys;
  /// Rows touched only by commutative delta increments (same packing).
  /// Modeled separately: deltas hold their row "locks" for a tiny
  /// fraction of the transaction (install + publish, no read-validate
  /// span), which is what flattens the hot-row contention knee.
  std::vector<uint64_t> delta_keys;
  /// Simulated/real seconds spent in retry backoff across all attempts.
  double backoff_s = 0;
};

/// The analytical side of the engine at one instant: a scan source over a
/// consistent snapshot. For hybrid engines, constructing the session
/// merges the outstanding delta into the column store first (the paper's
/// "merge the tail of the log before every analytical query", Sections
/// 6.4-6.5), charging that work to the requesting query.
struct AnalyticsSession {
  std::unique_ptr<DataSource> source;
  Ts snapshot = 0;
  /// Optional RAII guard the engine uses to pin its analytical state for
  /// the life of the session (e.g. the hybrid engine holds a pin so a
  /// concurrent delta merge cannot move data under a running query in
  /// wall-clock mode).
  ///
  /// Lifetime contract: the pin lasts until the LAST copy of this
  /// shared_ptr is destroyed, and engines must tolerate that release
  /// happening on any thread — morsel workers copy the guard into their
  /// ExecContext (ExecContext::session_pin) and may outlive both the
  /// session object and the thread that called BeginAnalytics. Engines
  /// must therefore back the guard with a primitive whose release is
  /// thread-agnostic (see engine/session_pin.h); thread-affine locks like
  /// std::shared_mutex are not safe here.
  std::shared_ptr<void> guard;
};

/// Transaction logic, expressed against the primary's transaction
/// manager. The HATtrick transactions (hattrick/transactions.h) are
/// written as TxnBody callbacks, so every engine runs identical logic.
using TxnBody =
    std::function<Status(TxnManager*, Transaction*, WorkMeter*)>;

/// Interface of an HTAP database engine. Three implementations mirror the
/// paper's design classification (Section 2.2):
///  - SharedEngine: single copy, single engine (PostgreSQL-like).
///  - IsolatedEngine: primary + log-shipped standby (PostgreSQL-SR-like).
///  - HybridEngine: row copy for T, columnar copy for A in one engine
///    (System-X / TiDB-like).
class HtapEngine {
 public:
  virtual ~HtapEngine() = default;

  virtual const std::string& name() const = 0;

  /// Creates tables and indexes. Must be called exactly once.
  virtual Status Create(const DatabaseSpec& spec) = 0;

  /// Loads initial rows into `table` (before FinishLoad; not replicated
  /// through the WAL, like a base backup).
  virtual Status BulkLoad(const std::string& table,
                          const std::vector<Row>& rows) = 0;

  /// Finalizes loading and snapshots the state for Reset().
  virtual Status FinishLoad() = 0;

  /// Executes `body` as one transaction with retry-on-abort, at the
  /// engine's configured isolation level. Work is metered into `meter`.
  virtual TxnOutcome ExecuteTransaction(const TxnBody& body,
                                        uint32_t client_id, uint64_t txn_num,
                                        WorkMeter* meter) = 0;

  /// Opens an analytical snapshot. Merge/maintenance work performed to
  /// serve the query is metered into `meter`.
  virtual AnalyticsSession BeginAnalytics(WorkMeter* meter) = 0;

  /// Performs one unit of background maintenance (standby WAL replay).
  /// Returns false if there is nothing to do. The driver schedules this
  /// on the analytical side's resources.
  virtual bool MaintenanceStep(WorkMeter* meter) { (void)meter; return false; }

  /// Outstanding maintenance units (shipped-but-unreplayed records).
  /// Nonzero while MaintenanceStep returns false means the engine is
  /// backing off from a fault, not caught up — the driver should poll
  /// again later instead of parking the applier until the next commit.
  virtual size_t MaintenancePending() const { return 0; }

  /// True once the standby (if any) has replayed through `lsn`
  /// (resolves CommitWait::kReplicaApplied).
  virtual bool IsApplied(uint64_t lsn) const { (void)lsn; return true; }

  /// Highest LSN replayed by the standby; engines without a standby
  /// report "everything" (they have no replication lag).
  virtual uint64_t applied_lsn() const { return UINT64_MAX; }

  /// Garbage-collects row versions that no possible snapshot can see
  /// (older than the newest committed state). Callers must quiesce
  /// in-flight snapshots first. Returns versions dropped.
  virtual size_t Vacuum() { return 0; }

  /// Restores the state saved by FinishLoad() (benchmark reset between
  /// runs, Section 6.1: "Before each benchmark run we reset the data to
  /// their initial state").
  virtual Status Reset() = 0;

  /// Primary catalog (transactions resolve indexes/tables through it).
  virtual Catalog* primary_catalog() = 0;

  /// The primary's transaction manager.
  virtual TxnManager* txn_manager() = 0;

  /// Attaches (or, with a default-constructed bundle, detaches) run
  /// observability. Wires the txn manager's metrics, the B+-tree split
  /// counters, and the engine-specific hooks (replication gauges, merge
  /// counters/spans, vacuum spans) via OnObservabilityChanged(). Call
  /// after Create(); a driver attaches before a run and detaches after
  /// its final registry snapshot.
  void SetObservability(const obs::Observability& observability) {
    obs_ = observability;
    TxnManager* txns = txn_manager();
    if (txns != nullptr) txns->SetMetrics(obs_.metrics);
    Catalog* catalog = primary_catalog();
    if (catalog != nullptr) {
      obs::Counter* splits =
          obs_.metrics == nullptr
              ? nullptr
              : obs_.metrics->GetCounter(obs::kStoreBtreeSplits);
      for (IndexInfo* index : catalog->AllIndexes()) {
        index->tree->set_split_counter(splits);
      }
    }
    OnObservabilityChanged();
  }

  const obs::Observability& observability() const { return obs_; }

 protected:
  /// Engine-specific observability wiring (replication probes, merge
  /// counters, ...). Called from SetObservability; obs_ is already set.
  virtual void OnObservabilityChanged() {}

  obs::Observability obs_;
};

}  // namespace hattrick

#endif  // HATTRICK_ENGINE_HTAP_ENGINE_H_
