#ifndef HATTRICK_ENGINE_ISOLATED_ENGINE_H_
#define HATTRICK_ENGINE_ISOLATED_ENGINE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine_config.h"
#include "engine/htap_engine.h"
#include "exec/scan.h"
#include "fault/fault_injector.h"
#include "replication/replica.h"
#include "replication/wal_stream.h"
#include "txn/timestamp.h"

namespace hattrick {

/// Isolated design (Section 2.2): a primary node executes transactions;
/// standby node(s) fed by streaming WAL replication serve analytics
/// (PostgreSQL-SR, Section 6.3).
///
/// - Compute isolation: the driver places transactions on the primary's
///   core pool and queries plus WAL replay on the standby's pool, so the
///   frontier approaches the bounding box at large scale factors.
/// - Freshness: analytical queries snapshot the *replayed* state of the
///   standby serving them. In ON mode replay is asynchronous, so queries
///   observe stale snapshots when a standby falls behind — the paper's
///   non-zero freshness scores. In REMOTE_APPLY mode commits wait for
///   replay on every standby (freshness == 0, lower T-throughput).
class IsolatedEngine final : public HtapEngine {
 public:
  explicit IsolatedEngine(IsolatedEngineConfig config = {});

  const std::string& name() const override { return config_.name; }
  Status Create(const DatabaseSpec& spec) override;
  Status BulkLoad(const std::string& table,
                  const std::vector<Row>& rows) override;
  Status FinishLoad() override;
  TxnOutcome ExecuteTransaction(const TxnBody& body, uint32_t client_id,
                                uint64_t txn_num, WorkMeter* meter) override;
  AnalyticsSession BeginAnalytics(WorkMeter* meter) override;
  bool MaintenanceStep(WorkMeter* meter) override;
  size_t MaintenancePending() const override;
  bool IsApplied(uint64_t lsn) const override;
  uint64_t applied_lsn() const override;
  /// Replication-mode wait (sync ship / remote apply) plus standby
  /// backpressure and injected ship-delay throttles for a write commit.
  CommitWait CommitWaitFor(uint64_t lsn, uint64_t wal_bytes) override;
  size_t Vacuum() override;
  Status Reset() override;
  Catalog* primary_catalog() override { return &primary_; }
  TxnManager* txn_manager() override { return txn_manager_.get(); }

  ReplicationMode mode() const { return config_.mode; }
  int num_replicas() const { return config_.num_replicas; }
  /// Standby `i` (0-based; i < num_replicas()).
  Replica* replica(int i = 0) { return replicas_[i].replica.get(); }
  /// Standby i's shipping stream (fault counters, retention depth).
  WalStream* stream(int i = 0) { return replicas_[i].stream.get(); }
  /// Records shipped but not yet replayed on the furthest-behind standby.
  size_t ReplicationLag() const;
  /// Deepest unacknowledged retention buffer — the backpressure signal.
  size_t MaxRetainedRecords() const;

 protected:
  void OnObservabilityChanged() override;

 private:
  /// Fans committed records out to every standby's shipping stream.
  class FanOutSink final : public WalSink {
   public:
    explicit FanOutSink(IsolatedEngine* engine) : engine_(engine) {}
    void OnCommit(const WalRecord& record) override;

   private:
    IsolatedEngine* engine_;
  };

  struct Standby {
    std::unique_ptr<Catalog> catalog;
    std::unique_ptr<FaultInjector> injector;  // null when faults disabled
    std::unique_ptr<WalStream> stream;
    std::unique_ptr<Replica> replica;
  };

  IsolatedEngineConfig config_;
  Catalog primary_;
  Catalog snapshot_;  // post-load state for Reset()
  TimestampOracle oracle_;
  FanOutSink sink_{this};
  std::unique_ptr<TxnManager> txn_manager_;
  std::vector<Standby> replicas_;
  std::atomic<uint64_t> next_session_{0};  // round-robin standby selector
  std::atomic<double> throttle_seconds_total_{0};
  obs::Counter* applied_records_metric_ = nullptr;
  obs::Counter* crash_recoveries_metric_ = nullptr;
  bool created_ = false;
  bool loaded_ = false;
};

}  // namespace hattrick

#endif  // HATTRICK_ENGINE_ISOLATED_ENGINE_H_
