#ifndef HATTRICK_ENGINE_ENGINE_FACADE_H_
#define HATTRICK_ENGINE_ENGINE_FACADE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "common/work_meter.h"
#include "exec/operator.h"
#include "txn/txn_context.h"

namespace hattrick {

/// Declarative description of the database: tables plus the physical
/// schema (indexes). The paper's physical-schema experiment (Figure 6b)
/// varies the index list: none / T-accelerating only ("semi") / all.
struct TableSpec {
  std::string name;
  Schema schema;
};

struct IndexSpec {
  std::string name;
  std::string table;
  std::vector<size_t> key_columns;
  bool unique = false;
};

struct DatabaseSpec {
  std::vector<TableSpec> tables;
  std::vector<IndexSpec> indexes;
};

/// What a client must wait for after the local part of a commit finishes.
/// The benchmark driver (wall-clock or virtual-time) resolves the wait:
///  - kNone: commit already complete.
///  - kShipDelay: wait for the record to reach and be written by the
///    standby (PostgreSQL-SR synchronous_commit=ON); duration derived
///    from `bytes` by the cost model.
///  - kReplicaApplied: wait until the standby has replayed `lsn`
///    (synchronous_commit=remote_apply).
struct CommitWait {
  enum class Kind { kNone, kShipDelay, kReplicaApplied };
  Kind kind = Kind::kNone;
  uint64_t lsn = 0;
  uint64_t bytes = 0;
  /// Extra seconds the client is stalled on top of the wait itself:
  /// backpressure when the standby's unacknowledged backlog exceeds its
  /// bound, plus any injected ship-delay fault. Applies to every Kind
  /// (even kNone — async commits are throttled too, or the backlog
  /// would grow without bound exactly when replication is degraded).
  double throttle_s = 0;
};

/// Outcome of one transaction execution (after retries).
struct TxnOutcome {
  Status status;     // OK iff finally committed
  int attempts = 1;  // 1 + number of aborts
  Ts commit_ts = 0;
  uint64_t lsn = 0;
  CommitWait wait;
  /// Rows written ((table_id << 40) | rid); feeds the simulator's
  /// row-lock contention model.
  std::vector<uint64_t> write_keys;
  /// Rows touched only by commutative delta increments (same packing).
  /// Modeled separately: deltas hold their row "locks" for a tiny
  /// fraction of the transaction (install + publish, no read-validate
  /// span), which is what flattens the hot-row contention knee.
  std::vector<uint64_t> delta_keys;
  /// Simulated/real seconds spent in retry backoff across all attempts.
  double backoff_s = 0;
  /// Shards this transaction wrote or prepared on (1 on single-node
  /// engines). The simulator charges the cross-shard coordination
  /// round-trips proportionally to this count.
  int shards_touched = 1;
};

/// The analytical side of the engine at one instant: a scan source over a
/// consistent snapshot. For hybrid engines, constructing the session
/// merges the outstanding delta into the column store first (the paper's
/// "merge the tail of the log before every analytical query", Sections
/// 6.4-6.5), charging that work to the requesting query.
struct AnalyticsSession {
  std::unique_ptr<DataSource> source;
  Ts snapshot = 0;
  /// Optional RAII guard the engine uses to pin its analytical state for
  /// the life of the session (e.g. the hybrid engine holds a pin so a
  /// concurrent delta merge cannot move data under a running query in
  /// wall-clock mode).
  ///
  /// Lifetime contract: the pin lasts until the LAST copy of this
  /// shared_ptr is destroyed, and engines must tolerate that release
  /// happening on any thread — morsel workers copy the guard into their
  /// ExecContext (ExecContext::session_pin) and may outlive both the
  /// session object and the thread that called BeginAnalytics. Engines
  /// must therefore back the guard with a primitive whose release is
  /// thread-agnostic (see engine/session_pin.h); thread-affine locks like
  /// std::shared_mutex are not safe here.
  std::shared_ptr<void> guard;
};

/// Transaction logic, expressed against the per-transaction execution
/// surface (txn/txn_context.h). The HATtrick transactions
/// (hattrick/transactions.h) are written as TxnBody callbacks, so every
/// engine — single-node or sharded — runs identical logic.
using TxnBody = std::function<Status(TxnContext*, WorkMeter*)>;

/// Transactional surface of an engine: run one body with retry-on-abort
/// at the engine's configured isolation level.
class TxnExecutor {
 public:
  virtual ~TxnExecutor() = default;

  /// Executes `body` as one transaction with retry-on-abort. Work is
  /// metered into `meter`.
  virtual TxnOutcome ExecuteTransaction(const TxnBody& body,
                                        uint32_t client_id, uint64_t txn_num,
                                        WorkMeter* meter) = 0;
};

/// Analytical surface: open a consistent snapshot with a pinned source.
class AnalyticsProvider {
 public:
  virtual ~AnalyticsProvider() = default;

  /// Opens an analytical snapshot. Merge/maintenance work performed to
  /// serve the query is metered into `meter`.
  virtual AnalyticsSession BeginAnalytics(WorkMeter* meter) = 0;
};

/// Background-maintenance surface (standby WAL replay, column folds).
/// The driver pumps it on the analytical side's resources.
class MaintenancePump {
 public:
  virtual ~MaintenancePump() = default;

  /// Performs one unit of background maintenance. Returns false if
  /// there is nothing to do.
  virtual bool MaintenanceStep(WorkMeter* meter) {
    (void)meter;
    return false;
  }

  /// Outstanding maintenance units (shipped-but-unreplayed records).
  /// Nonzero while MaintenanceStep returns false means the engine is
  /// backing off from a fault, not caught up — the driver should poll
  /// again later instead of parking the applier until the next commit.
  virtual size_t MaintenancePending() const { return 0; }
};

/// Replication-visibility surface: what the driver consults to resolve
/// commit waits and freshness probes. Engines without a standby report
/// "everything applied" (no replication lag).
class ReplicationHooks {
 public:
  virtual ~ReplicationHooks() = default;

  /// True once the standby (if any) has replayed through `lsn`
  /// (resolves CommitWait::kReplicaApplied).
  virtual bool IsApplied(uint64_t lsn) const {
    (void)lsn;
    return true;
  }

  /// Highest LSN replayed by the standby.
  virtual uint64_t applied_lsn() const { return UINT64_MAX; }

  /// The wait a write commit at `lsn` that emitted `wal_bytes` bytes
  /// must resolve before the client proceeds (replication mode, standby
  /// backpressure, injected ship-delay faults). Engines without
  /// replication return the default no-wait. The shard layer folds the
  /// per-participant waits of a distributed commit through this hook.
  virtual CommitWait CommitWaitFor(uint64_t lsn, uint64_t wal_bytes) {
    (void)lsn;
    (void)wal_bytes;
    return CommitWait{};
  }
};

}  // namespace hattrick

#endif  // HATTRICK_ENGINE_ENGINE_FACADE_H_
