#ifndef HATTRICK_ENGINE_SHARED_ENGINE_H_
#define HATTRICK_ENGINE_SHARED_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/engine_config.h"
#include "engine/htap_engine.h"
#include "exec/scan.h"
#include "txn/timestamp.h"

namespace hattrick {

/// Shared design (Section 2.2): one engine, one copy of the data, both
/// workloads share all resources. Interference between T and A comes from
/// sharing compute (modeled by the simulator's single core pool) and from
/// MVCC version-chain traffic plus index maintenance (real, metered).
/// Analytics always read the latest committed snapshot, so the freshness
/// score is identically zero — the PostgreSQL behavior in Section 6.2.
class SharedEngine final : public HtapEngine {
 public:
  explicit SharedEngine(SharedEngineConfig config = {});

  const std::string& name() const override { return config_.name; }
  Status Create(const DatabaseSpec& spec) override;
  Status BulkLoad(const std::string& table,
                  const std::vector<Row>& rows) override;
  Status FinishLoad() override;
  TxnOutcome ExecuteTransaction(const TxnBody& body, uint32_t client_id,
                                uint64_t txn_num, WorkMeter* meter) override;
  AnalyticsSession BeginAnalytics(WorkMeter* meter) override;
  size_t Vacuum() override;
  Status Reset() override;
  Catalog* primary_catalog() override { return &catalog_; }
  TxnManager* txn_manager() override { return txn_manager_.get(); }

  IsolationLevel isolation() const { return config_.isolation; }

 private:
  SharedEngineConfig config_;
  Catalog catalog_;
  Catalog snapshot_;  // post-load state for Reset()
  TimestampOracle oracle_;
  std::unique_ptr<TxnManager> txn_manager_;
  bool created_ = false;
  bool loaded_ = false;
};

/// Shared helper for all engines: creates tables/indexes in a catalog.
void BuildCatalog(const DatabaseSpec& spec, bool with_indexes,
                  Catalog* catalog);

/// Shared helper: inserts `rows` into `table` at load timestamp 1 and
/// maintains the catalog's indexes.
Status BulkLoadInto(Catalog* catalog, const std::string& table,
                    const std::vector<Row>& rows);

}  // namespace hattrick

#endif  // HATTRICK_ENGINE_SHARED_ENGINE_H_
