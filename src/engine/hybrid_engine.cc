#include "engine/hybrid_engine.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "engine/shared_engine.h"

namespace hattrick {

MergeMode DefaultMergeMode() {
  static const MergeMode mode = [] {
    const char* env = std::getenv("HATTRICK_MERGE_MODE");
    if (env == nullptr || env[0] == '\0' ||
        std::strcmp(env, "eager") == 0) {
      return MergeMode::kEager;
    }
    if (std::strcmp(env, "bitmap") == 0) {
      return MergeMode::kBitmap;
    }
    // A typo must not silently benchmark the wrong merge protocol.
    std::fprintf(stderr,
                 "HATTRICK_MERGE_MODE: unknown mode '%s' "
                 "(expected 'eager' or 'bitmap')\n",
                 env);
    std::abort();
  }();
  return mode;
}

HybridEngineConfig SystemXConfig() {
  HybridEngineConfig config;
  config.name = "System-X";
  config.isolation = IsolationLevel::kSerializable;
  return config;
}

HybridEngineConfig TidbConfig() {
  HybridEngineConfig config;
  config.name = "TiDB";
  config.isolation = IsolationLevel::kSnapshot;
  return config;
}

HybridEngine::HybridEngine(HybridEngineConfig config)
    : config_(std::move(config)) {}

void HybridEngine::DeltaFeed::OnCommit(const WalRecord& record) {
  if (engine_->config_.merge_mode == MergeMode::kBitmap) {
    // Runs inside the commit critical section, before the oracle
    // advances to this commit's timestamp: versions append in commit
    // order (the per-table logs stay CSN-ascending), and a session
    // snapshotting at last_committed() always sees a complete prefix.
    for (const WalOp& op : record.ops) {
      ColumnTable* column = engine_->columns_[op.table_id].get();
      // Exhaustive over WalOp::Kind; an unhandled new kind is a compile
      // warning here, not a silent replay-as-update.
      switch (op.kind) {
        case WalOp::Kind::kInsert:
          column->AppendVersion(record.commit_ts, op.rid, op.row);
          break;
        case WalOp::Kind::kDelta:
          column->AppendDeltaVersion(record.commit_ts, op.rid, op.column,
                                     op.row[0]);
          break;
        case WalOp::Kind::kUpdate:
          column->UpdateVersion(record.commit_ts, op.rid, op.row);
          break;
      }
    }
    return;
  }
  MutexLock lock(&engine_->delta_mutex_);
  engine_->delta_.push_back(record);
}

Status HybridEngine::Create(const DatabaseSpec& spec) {
  if (created_) return Status::Internal("Create called twice");
  BuildCatalog(spec, /*with_indexes=*/true, &primary_);
  BuildCatalog(spec, /*with_indexes=*/false, &snapshot_);
  columns_.reserve(spec.tables.size());
  column_snapshots_.reserve(spec.tables.size());
  for (const TableSpec& table : spec.tables) {
    columns_.push_back(std::make_unique<ColumnTable>(table.schema));
    column_snapshots_.push_back(std::make_unique<ColumnTable>(table.schema));
  }
  txn_manager_ = std::make_unique<TxnManager>(&primary_, &oracle_, &feed_);
  created_ = true;
  return Status::OK();
}

Status HybridEngine::BulkLoad(const std::string& table,
                              const std::vector<Row>& rows) {
  if (!created_) return Status::Internal("Create not called");
  if (loaded_) return Status::Internal("load already finished");
  HATTRICK_RETURN_IF_ERROR(BulkLoadInto(&primary_, table, rows));
  ColumnTable* column = columns_[primary_.GetTableId(table)].get();
  for (const Row& row : rows) {
    HATTRICK_RETURN_IF_ERROR(column->Append(row, /*meter=*/nullptr));
  }
  return Status::OK();
}

Status HybridEngine::FinishLoad() {
  if (loaded_) return Status::Internal("load already finished");
  snapshot_.CopyContentsFrom(primary_);
  for (size_t i = 0; i < columns_.size(); ++i) {
    column_snapshots_[i]->CopyFrom(*columns_[i]);
  }
  oracle_.ResetTo(1);
  loaded_ = true;
  return Status::OK();
}

TxnOutcome HybridEngine::ExecuteTransaction(const TxnBody& body,
                                            uint32_t client_id,
                                            uint64_t txn_num,
                                            WorkMeter* meter) {
  TxnOutcome outcome;
  StatusOr<CommitResult> result = txn_manager_->RunWithRetries(
      config_.isolation, client_id, txn_num,
      [&](Transaction* txn) {
        LocalTxnContext ctx(txn_manager_.get(), txn);
        return body(&ctx, meter);
      },
      meter,
      config_.max_retries, &outcome.attempts, &outcome.backoff_s);
  if (!result.ok()) {
    outcome.status = result.status();
    return outcome;
  }
  outcome.status = Status::OK();
  outcome.commit_ts = result->commit_ts;
  outcome.lsn = result->lsn;
  outcome.write_keys = std::move(result.value().write_keys);
  outcome.delta_keys = std::move(result.value().delta_keys);
  return outcome;  // no commit wait: merge happens on the analytical side
}

void HybridEngine::MergeDelta(WorkMeter* meter) {
  // Serialize whole merge passes so batches apply in commit order, then
  // drain the queue under the delta mutex and apply under the merge
  // latch (which excludes running analytical sessions, not commits).
  MutexLock order(&merge_order_);
  std::deque<WalRecord> batch;
  {
    MutexLock lock(&delta_mutex_);
    batch.swap(delta_);
  }
  if (batch.empty()) return;
  obs::ScopedSpan span(obs_.tracer, obs_.clock, "delta-merge", "merge",
                       obs::kTrackEngine);
  uint64_t rows_merged = 0;
  merge_latch_.WithExclusive([&] {
    for (const WalRecord& record : batch) {
      for (const WalOp& op : record.ops) {
        ColumnTable* column = columns_[op.table_id].get();
        // Exhaustive over WalOp::Kind; an unhandled new kind is a
        // compile warning here, not a silent merge-as-update.
        switch (op.kind) {
          case WalOp::Kind::kInsert: {
            assert(column->num_rows() == op.rid &&
                   "column copy out of sync with row store");
            const Status s = column->Append(op.row, meter);
            assert(s.ok());
            (void)s;
            break;
          }
          case WalOp::Kind::kDelta: {
            const Status s =
                column->ApplyDelta(op.rid, op.column, op.row[0], meter);
            assert(s.ok());
            (void)s;
            break;
          }
          case WalOp::Kind::kUpdate: {
            const Status s = column->UpdateRow(op.rid, op.row, meter);
            assert(s.ok());
            (void)s;
            break;
          }
        }
        ++rows_merged;
        if (meter != nullptr) ++meter->merged_rows;
      }
      if (meter != nullptr) {
        ++meter->wal_records;
        meter->wal_bytes += record.Encode().size();
      }
    }
  });
  if (merge_passes_metric_ != nullptr) {
    merge_passes_metric_->Inc();
    merge_rows_metric_->Inc(rows_merged);
    merge_records_metric_->Inc(batch.size());
  }
  span.AppendArgs("\"records\":" + std::to_string(batch.size()) +
                  ",\"rows\":" + std::to_string(rows_merged));
}

AnalyticsSession HybridEngine::BeginAnalytics(WorkMeter* meter) {
  if (config_.merge_mode == MergeMode::kBitmap) {
    AnalyticsSession session;
    // Pin FIRST, then read the snapshot CSN. The pin excludes folds for
    // the life of the session, and every version already folded had
    // csn <= some earlier last_committed() <= this snapshot — so the
    // base plus the snapshotted log prefix is exactly the committed
    // state at the CSN, never half-folded. (Snapshotting before
    // pinning would race a fold whose horizon passed the CSN.)
    session.guard = merge_latch_.AcquirePin();
    session.snapshot = oracle_.last_committed();
    auto source = std::make_unique<ColumnDataSource>();
    for (size_t id = 0; id < columns_.size(); ++id) {
      auto delta = std::make_shared<ColumnDeltaSnapshot>();
      columns_[id]->SnapshotVersions(session.snapshot, delta.get(), meter);
      const size_t bound = delta->bound;
      // An empty snapshot degrades to the plain merged-base scan.
      source->AddTable(primary_.table_name(static_cast<TableId>(id)),
                       columns_[id].get(), bound,
                       delta->Empty() ? nullptr : std::move(delta));
    }
    session.source = std::move(source);
    return session;
  }
  // Merge the tail of the log so the query sees all committed updates —
  // the zero-freshness design of System-X and TiDB (Sections 6.4, 6.5).
  MergeDelta(meter);
  AnalyticsSession session;
  session.snapshot = oracle_.last_committed();
  std::shared_ptr<void> guard = merge_latch_.AcquirePin();
  auto source = std::make_unique<ColumnDataSource>();
  for (size_t id = 0; id < columns_.size(); ++id) {
    source->AddTable(primary_.table_name(static_cast<TableId>(id)),
                     columns_[id].get(), columns_[id]->num_rows());
  }
  session.source = std::move(source);
  session.guard = std::move(guard);
  return session;
}

size_t HybridEngine::FoldPass(WorkMeter* meter) {
  // Serialized with eager merges and other folds; the horizon is read
  // after taking the order lock so two passes never fold out of order.
  MutexLock order(&merge_order_);
  const Ts horizon = oracle_.last_committed();
  if (TotalPendingVersions() == 0) return 0;
  obs::ScopedSpan span(obs_.tracer, obs_.clock, "delta-fold", "merge",
                       obs::kTrackEngine);
  size_t folded = 0;
  // The exclusive latch waits out running sessions (their snapshots
  // reference base payloads that the fold reallocates) and blocks new
  // pins until the pass completes — the GC side of visibility.
  merge_latch_.WithExclusive([&] {
    for (auto& column : columns_) {
      folded += column->FoldVersions(horizon, meter);
    }
  });
  if (fold_passes_metric_ != nullptr && folded > 0) {
    fold_passes_metric_->Inc();
    fold_rows_metric_->Inc(folded);
  }
  span.AppendArgs("\"ops\":" + std::to_string(folded));
  return folded;
}

size_t HybridEngine::TotalPendingVersions() const {
  size_t total = 0;
  for (const auto& column : columns_) total += column->PendingVersions();
  return total;
}

bool HybridEngine::MaintenanceStep(WorkMeter* meter) {
  if (config_.merge_mode != MergeMode::kBitmap) return false;
  if (TotalPendingVersions() < config_.fold_watermark) return false;
  return FoldPass(meter) > 0;
}

size_t HybridEngine::MaintenancePending() const {
  // Below the watermark this must report 0: the maintenance pump
  // re-polls while it is nonzero, and shallow deltas are served by
  // session snapshots, not folds.
  if (config_.merge_mode != MergeMode::kBitmap) return 0;
  const size_t pending = TotalPendingVersions();
  return pending >= config_.fold_watermark ? pending : 0;
}

void HybridEngine::FoldAll(WorkMeter* meter) {
  if (config_.merge_mode == MergeMode::kBitmap) {
    FoldPass(meter);
  } else {
    MergeDelta(meter);
  }
}

size_t HybridEngine::Vacuum() {
  obs::ScopedSpan span(obs_.tracer, obs_.clock, "vacuum", "maint",
                       obs::kTrackEngine);
  const size_t dropped = primary_.VacuumAll(oracle_.last_committed());
  if (obs_.metrics != nullptr) {
    obs_.metrics->GetCounter(obs::kStoreVacuumedVersions)->Inc(dropped);
  }
  span.AppendArgs("\"versions\":" + std::to_string(dropped));
  return dropped;
}

void HybridEngine::OnObservabilityChanged() {
  if (obs_.metrics == nullptr) {
    merge_passes_metric_ = merge_rows_metric_ = merge_records_metric_ =
        nullptr;
    fold_passes_metric_ = fold_rows_metric_ = nullptr;
    return;
  }
  merge_passes_metric_ = obs_.metrics->GetCounter(obs::kStoreMergePasses);
  merge_rows_metric_ = obs_.metrics->GetCounter(obs::kStoreMergeRows);
  merge_records_metric_ = obs_.metrics->GetCounter(obs::kStoreMergeRecords);
  fold_passes_metric_ = obs_.metrics->GetCounter(obs::kStoreFoldPasses);
  fold_rows_metric_ = obs_.metrics->GetCounter(obs::kStoreFoldRows);
  obs_.metrics->GetGauge(obs::kStoreDeltaPending)->SetProbe([this] {
    return static_cast<double>(PendingDelta());
  });
  obs_.metrics->GetGauge(obs::kStoreVersionDepth)->SetProbe([this] {
    return static_cast<double>(TotalPendingVersions());
  });
}

Status HybridEngine::Reset() {
  if (!loaded_) return Status::Internal("FinishLoad not called");
  merge_latch_.WithExclusive([&] {
    primary_.CopyContentsFrom(snapshot_);
    {
      MutexLock lock(&delta_mutex_);
      delta_.clear();
    }
    for (size_t i = 0; i < columns_.size(); ++i) {
      columns_[i]->CopyFrom(*column_snapshots_[i]);
    }
    oracle_.ResetTo(1);
    txn_manager_->ResetLsn(1);
  });
  return Status::OK();
}

size_t HybridEngine::PendingDelta() const {
  if (config_.merge_mode == MergeMode::kBitmap) {
    return TotalPendingVersions();
  }
  MutexLock lock(&delta_mutex_);
  return delta_.size();
}

const ColumnTable* HybridEngine::column_table(
    const std::string& table) const {
  return columns_[primary_.GetTableId(table)].get();
}

}  // namespace hattrick
