#ifndef HATTRICK_ENGINE_SESSION_PIN_H_
#define HATTRICK_ENGINE_SESSION_PIN_H_

#include <memory>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace hattrick {

/// Counted pin that analytical sessions hold on an engine's scan state,
/// with exclusive sections (delta merge, reset) that wait for all pins to
/// drop and block new ones while running.
///
/// This replaces a std::shared_mutex for the AnalyticsSession::guard
/// role. A shared_mutex guard is subtly wrong for parallel execution: the
/// guard is a shared_ptr copied into morsel worker threads, so the last
/// release — the implicit unlock — can happen on a different thread than
/// the BeginAnalytics call that locked it, which is undefined behaviour
/// for shared_mutex. SessionPinLatch's release is a plain counter
/// decrement under a mutex: safe from any thread, any time.
///
/// The guard-lifetime contract is encoded in the annotations:
///  - AcquirePin/ReleasePin/WithExclusive are EXCLUDES(mutex_): no caller
///    may already hold the latch mutex, so a pin can be released from any
///    thread at any point — including from inside a morsel worker after
///    the thread that called BeginAnalytics has moved on — without
///    self-deadlock.
///  - The counters are GUARDED_BY(mutex_) and only reachable through
///    REQUIRES(mutex_) helpers, so no code path can observe or mutate pin
///    state unsynchronized.
///
/// Writers (WithExclusive) take priority over new pins so a stream of
/// overlapping sessions cannot starve merges.
class SessionPinLatch {
 public:
  /// Acquires one pin; blocks while an exclusive section runs or waits.
  /// The returned handle releases the pin when destroyed — from whichever
  /// thread drops the last reference (see the lifetime contract above and
  /// AnalyticsSession::guard in engine/htap_engine.h).
  std::shared_ptr<void> AcquirePin() EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    while (writers_ != 0) cv_.Wait(&mutex_);
    ++pins_;
    // The handle's payload is irrelevant; only the deleter matters.
    return std::shared_ptr<void>(this, [](void* self) {
      static_cast<SessionPinLatch*>(self)->ReleasePin();
    });
  }

  /// Runs `f` exclusively: blocks new pins, waits for outstanding pins to
  /// drain, then invokes f. `f` runs with mutex_ held, so it must not
  /// acquire or release pins on this latch (it may take other locks).
  template <typename Fn>
  void WithExclusive(Fn&& f) EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    ++writers_;
    while (pins_ != 0) cv_.Wait(&mutex_);
    f();
    --writers_;
    cv_.NotifyAll();
  }

 private:
  /// Deleter path of the AcquirePin handle; runs on whatever thread drops
  /// the last shared_ptr reference, hence EXCLUDES(mutex_).
  void ReleasePin() EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    if (--pins_ == 0) cv_.NotifyAll();
  }

  Mutex mutex_;
  CondVar cv_;
  int pins_ GUARDED_BY(mutex_) = 0;
  int writers_ GUARDED_BY(mutex_) = 0;
};

}  // namespace hattrick

#endif  // HATTRICK_ENGINE_SESSION_PIN_H_
