#ifndef HATTRICK_ENGINE_SESSION_PIN_H_
#define HATTRICK_ENGINE_SESSION_PIN_H_

#include <condition_variable>
#include <memory>
#include <mutex>

namespace hattrick {

/// Counted pin that analytical sessions hold on an engine's scan state,
/// with exclusive sections (delta merge, reset) that wait for all pins to
/// drop and block new ones while running.
///
/// This replaces a std::shared_mutex for the AnalyticsSession::guard
/// role. A shared_mutex guard is subtly wrong for parallel execution: the
/// guard is a shared_ptr copied into morsel worker threads, so the last
/// release — the implicit unlock — can happen on a different thread than
/// the BeginAnalytics call that locked it, which is undefined behaviour
/// for shared_mutex. SessionPinLatch's release is a plain counter
/// decrement under a mutex: safe from any thread, any time.
///
/// Writers (WithExclusive) take priority over new pins so a stream of
/// overlapping sessions cannot starve merges.
class SessionPinLatch {
 public:
  /// Acquires one pin; blocks while an exclusive section runs or waits.
  /// The returned handle releases the pin when destroyed — from whichever
  /// thread drops the last reference.
  std::shared_ptr<void> AcquirePin() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return writers_ == 0; });
    ++pins_;
    // The handle's payload is irrelevant; only the deleter matters.
    return std::shared_ptr<void>(this, [](void* self) {
      static_cast<SessionPinLatch*>(self)->ReleasePin();
    });
  }

  /// Runs `f` exclusively: blocks new pins, waits for outstanding pins to
  /// drain, then invokes f.
  template <typename Fn>
  void WithExclusive(Fn&& f) {
    std::unique_lock lock(mutex_);
    ++writers_;
    cv_.wait(lock, [this] { return pins_ == 0; });
    f();
    --writers_;
    cv_.notify_all();
  }

 private:
  void ReleasePin() {
    std::lock_guard lock(mutex_);
    if (--pins_ == 0) cv_.notify_all();
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  int pins_ = 0;
  int writers_ = 0;
};

}  // namespace hattrick

#endif  // HATTRICK_ENGINE_SESSION_PIN_H_
