#ifndef HATTRICK_ENGINE_ENGINE_CONFIG_H_
#define HATTRICK_ENGINE_ENGINE_CONFIG_H_

#include <string>

#include "fault/fault_injector.h"
#include "replication/wal_stream.h"
#include "txn/txn_manager.h"

namespace hattrick {

/// How the hybrid engine makes committed writes visible to analytics.
///  - kEager: the paper's protocol — BeginAnalytics merges the whole
///    outstanding delta into the column store under the merge latch
///    before the query starts (freshness 0, but every query stalls on
///    the merge and on running sessions).
///  - kBitmap: committed delta records become CSN-stamped versions on
///    the column tables; BeginAnalytics captures a snapshot CSN and an
///    immutable visibility snapshot (dirty bitmap + override/insert
///    rows) without taking the merge latch. A background fold — driven
///    by the maintenance pump, charged to the A side — merges cold
///    versions down once the delta depth crosses a watermark (freshness
///    still 0: the snapshot CSN is the newest committed timestamp).
enum class MergeMode { kEager, kBitmap };

/// Process-wide default merge mode: the HATTRICK_MERGE_MODE environment
/// variable ("eager" | "bitmap", default eager), read once and cached so
/// a full test binary runs uniformly under either mode. Any other value
/// is rejected with a one-line error and an abort — a typo must not
/// silently benchmark the wrong protocol.
MergeMode DefaultMergeMode();

/// Configuration of the shared-design engine.
struct SharedEngineConfig {
  std::string name = "shared";
  /// The paper's PostgreSQL experiments run serializable by default and
  /// read committed in the Figure 6a comparison.
  IsolationLevel isolation = IsolationLevel::kSerializable;
  /// Transactions aborted by validation are retried up to this many times;
  /// only the final success counts toward throughput.
  int max_retries = 50;
};

/// Configuration of the isolated-design engine.
struct IsolatedEngineConfig {
  std::string name = "isolated";
  IsolationLevel isolation = IsolationLevel::kSerializable;
  /// PostgreSQL-SR synchronous_commit: ON (sync ship, async replay) by
  /// default; REMOTE_APPLY for the zero-freshness mode of Figure 8a.
  ReplicationMode mode = ReplicationMode::kSyncShip;
  /// Number of standby nodes ("standby server(s)", Section 6.3).
  /// Analytical sessions round-robin across standbys; in REMOTE_APPLY
  /// mode a commit waits until *every* standby has replayed it.
  int num_replicas = 1;
  int max_retries = 50;
  /// Replication-layer fault injection (disabled by default). Each
  /// standby gets its own injector whose seed mixes the standby index,
  /// so standbys see independent — but still deterministic — schedules.
  FaultConfig fault;
  /// Backpressure: once a standby's unacknowledged retention buffer
  /// exceeds this many records, write commits are throttled (see
  /// CommitWait::throttle_s) so a degraded standby bounds the backlog
  /// instead of letting the primary run away from it.
  size_t max_backlog_records = 4096;
  /// Per-excess-record commit stall, and its cap per commit.
  double backpressure_stall_s = 20e-6;
  double backpressure_stall_cap_s = 5e-3;
};

/// Configuration of the hybrid-design engine.
struct HybridEngineConfig {
  std::string name = "hybrid";
  /// System-X uses optimistic MVCC at serializable (Section 6.4); TiDB's
  /// default is snapshot-isolated repeatable read (Section 6.5).
  IsolationLevel isolation = IsolationLevel::kSerializable;
  int max_retries = 50;
  MergeMode merge_mode = DefaultMergeMode();
  /// Bitmap mode: background fold triggers once the committed-but-
  /// unfolded version count (across all tables) reaches this depth.
  /// Below it, versions stay in the log and sessions pay only the
  /// (cheap) snapshot cost.
  size_t fold_watermark = 4096;
};

/// Returns a config matching the paper's System-X (memory-optimized OCC
/// engine with an in-memory clustered column store copy).
HybridEngineConfig SystemXConfig();

/// Returns a config matching single-node TiDB (TiKV row store + TiFlash
/// columnar learner, snapshot-isolated reads).
HybridEngineConfig TidbConfig();

}  // namespace hattrick

#endif  // HATTRICK_ENGINE_ENGINE_CONFIG_H_
