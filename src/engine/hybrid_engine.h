#ifndef HATTRICK_ENGINE_HYBRID_ENGINE_H_
#define HATTRICK_ENGINE_HYBRID_ENGINE_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "engine/engine_config.h"
#include "engine/htap_engine.h"
#include "engine/session_pin.h"
#include "exec/scan.h"
#include "storage/column_table.h"
#include "txn/timestamp.h"

namespace hattrick {

/// Hybrid design (Section 2.2): one engine and shared compute, but two
/// copies of the data — a row store executing transactions and a columnar
/// copy serving analytics. Committed writes queue as a delta; in eager
/// mode, opening an analytical session first merges the outstanding
/// delta into the column store ("every analytical query ... has to fetch
/// the changes from the transactional log or the tail of the T copy"),
/// so the freshness score is identically zero and merge cost lands on
/// the analytical side. In bitmap mode (see MergeMode) commits append
/// CSN-stamped versions instead and sessions scan through per-session
/// visibility snapshots, killing the merge-before-read stall while
/// keeping freshness 0 and bit-identical query results.
class HybridEngine final : public HtapEngine {
 public:
  explicit HybridEngine(HybridEngineConfig config = {});

  const std::string& name() const override { return config_.name; }
  Status Create(const DatabaseSpec& spec) override;
  Status BulkLoad(const std::string& table,
                  const std::vector<Row>& rows) override;
  Status FinishLoad() override;
  TxnOutcome ExecuteTransaction(const TxnBody& body, uint32_t client_id,
                                uint64_t txn_num, WorkMeter* meter) override;
  AnalyticsSession BeginAnalytics(WorkMeter* meter) override;
  /// Bitmap mode: folds versions down once the delta depth crosses the
  /// watermark (the driver schedules this on A-side resources). Eager
  /// mode has no background maintenance and always returns false.
  bool MaintenanceStep(WorkMeter* meter) override;
  /// Bitmap mode: the unfolded version count once it reaches the
  /// watermark, else 0 (below the watermark there is nothing the pump
  /// should wake for — sessions read through their snapshots).
  size_t MaintenancePending() const override;
  size_t Vacuum() override;
  Status Reset() override;
  Catalog* primary_catalog() override { return &primary_; }
  TxnManager* txn_manager() override { return txn_manager_.get(); }

  /// Forces full visibility of the committed state into the columnar
  /// base: merges the delta queue (eager) or folds every version
  /// (bitmap). For tests and benchmark quiesce points; not on the query
  /// path. Must not be called while this thread holds an open session
  /// guard (the fold excludes running sessions).
  void FoldAll(WorkMeter* meter);

  MergeMode merge_mode() const { return config_.merge_mode; }

  /// Committed-but-unmerged delta work: queued records (eager) or
  /// unfolded versions (bitmap). After BeginAnalytics (eager) or
  /// FoldAll (both modes) this is zero.
  size_t PendingDelta() const EXCLUDES(delta_mutex_);

  /// The columnar copy of `table` (tests/benchmarks).
  const ColumnTable* column_table(const std::string& table) const;

 protected:
  void OnObservabilityChanged() override;

 private:
  /// WalSink feeding the delta queue; separate object so the engine's
  /// public surface stays an HtapEngine.
  class DeltaFeed final : public WalSink {
   public:
    explicit DeltaFeed(HybridEngine* engine) : engine_(engine) {}
    void OnCommit(const WalRecord& record) override;

   private:
    HybridEngine* engine_;
  };

  void MergeDelta(WorkMeter* meter) EXCLUDES(merge_order_, delta_mutex_);

  /// Bitmap mode: one whole fold pass — folds every version with
  /// csn <= the newest committed timestamp into the columnar base,
  /// under the session pin latch (base payloads reallocate). Returns
  /// ops folded.
  size_t FoldPass(WorkMeter* meter) EXCLUDES(merge_order_);

  /// Unfolded versions across all column tables (bitmap mode).
  size_t TotalPendingVersions() const;

  HybridEngineConfig config_;
  Catalog primary_;
  Catalog snapshot_;  // post-load row state for Reset()
  std::vector<std::unique_ptr<ColumnTable>> columns_;  // by TableId
  /// Post-load columnar state for Reset(). TruncateTo is insufficient
  /// because merged *updates* mutate loaded rows in place.
  std::vector<std::unique_ptr<ColumnTable>> column_snapshots_;
  TimestampOracle oracle_;
  DeltaFeed feed_{this};
  std::unique_ptr<TxnManager> txn_manager_;
  mutable Mutex delta_mutex_;
  std::deque<WalRecord> delta_ GUARDED_BY(delta_mutex_);
  /// Orders whole merge passes: without it two concurrent BeginAnalytics
  /// calls could drain delta batches and then apply them out of commit
  /// order (inserts must land at their row-store rids). Acquired before
  /// delta_mutex_ and before the merge latch's internal mutex.
  Mutex merge_order_ ACQUIRED_BEFORE(delta_mutex_);
  /// Pins running analytical sessions (and their morsel workers) against
  /// delta merges and resets. A pin latch rather than a shared_mutex
  /// because the session guard may be released from a worker thread (see
  /// engine/session_pin.h and AnalyticsSession::guard).
  SessionPinLatch merge_latch_;
  obs::Counter* merge_passes_metric_ = nullptr;
  obs::Counter* merge_rows_metric_ = nullptr;
  obs::Counter* merge_records_metric_ = nullptr;
  obs::Counter* fold_passes_metric_ = nullptr;
  obs::Counter* fold_rows_metric_ = nullptr;
  bool created_ = false;
  bool loaded_ = false;
};

}  // namespace hattrick

#endif  // HATTRICK_ENGINE_HYBRID_ENGINE_H_
