#ifndef HATTRICK_ENGINE_ENGINE_FACTORY_H_
#define HATTRICK_ENGINE_ENGINE_FACTORY_H_

#include <memory>

#include "engine/engine_config.h"
#include "engine/htap_engine.h"

namespace hattrick {

/// Constructs the three single-node engine designs behind the HtapEngine
/// facade. Benchmarks and tools build engines through these factories so
/// only src/engine/ and src/shard/ depend on the concrete engine types
/// (enforced by the hattrick-lint concrete-engine-include rule).
std::unique_ptr<HtapEngine> MakeSharedEngine(SharedEngineConfig config = {});
std::unique_ptr<HtapEngine> MakeIsolatedEngine(
    IsolatedEngineConfig config = {});
std::unique_ptr<HtapEngine> MakeHybridEngine(HybridEngineConfig config = {});

}  // namespace hattrick

#endif  // HATTRICK_ENGINE_ENGINE_FACTORY_H_
