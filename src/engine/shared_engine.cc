#include "engine/shared_engine.h"

#include <cassert>

namespace hattrick {

void BuildCatalog(const DatabaseSpec& spec, bool with_indexes,
                  Catalog* catalog) {
  for (const TableSpec& table : spec.tables) {
    catalog->CreateTable(table.name, table.schema);
  }
  if (with_indexes) {
    for (const IndexSpec& index : spec.indexes) {
      catalog->CreateIndex(index.name, index.table, index.key_columns,
                           index.unique);
    }
  }
}

Status BulkLoadInto(Catalog* catalog, const std::string& table,
                    const std::vector<Row>& rows) {
  RowTable* t = catalog->GetTable(table);
  if (t == nullptr) return Status::NotFound("no such table: " + table);
  const TableId id = catalog->GetTableId(table);
  for (const Row& row : rows) {
    HATTRICK_RETURN_IF_ERROR(t->schema().ValidateRow(row));
    const Rid rid = t->Insert(row, /*begin_ts=*/1, /*meter=*/nullptr);
    for (const IndexInfo* index : catalog->TableIndexes(id)) {
      index->tree->Insert(index->KeyFor(row, rid), rid, /*meter=*/nullptr);
    }
  }
  return Status::OK();
}

SharedEngine::SharedEngine(SharedEngineConfig config)
    : config_(std::move(config)) {}

Status SharedEngine::Create(const DatabaseSpec& spec) {
  if (created_) return Status::Internal("Create called twice");
  BuildCatalog(spec, /*with_indexes=*/true, &catalog_);
  BuildCatalog(spec, /*with_indexes=*/false, &snapshot_);
  txn_manager_ = std::make_unique<TxnManager>(&catalog_, &oracle_,
                                              /*sink=*/nullptr);
  created_ = true;
  return Status::OK();
}

Status SharedEngine::BulkLoad(const std::string& table,
                              const std::vector<Row>& rows) {
  if (!created_) return Status::Internal("Create not called");
  if (loaded_) return Status::Internal("load already finished");
  return BulkLoadInto(&catalog_, table, rows);
}

Status SharedEngine::FinishLoad() {
  if (loaded_) return Status::Internal("load already finished");
  snapshot_.CopyContentsFrom(catalog_);
  oracle_.ResetTo(1);
  loaded_ = true;
  return Status::OK();
}

TxnOutcome SharedEngine::ExecuteTransaction(const TxnBody& body,
                                            uint32_t client_id,
                                            uint64_t txn_num,
                                            WorkMeter* meter) {
  TxnOutcome outcome;
  StatusOr<CommitResult> result = txn_manager_->RunWithRetries(
      config_.isolation, client_id, txn_num,
      [&](Transaction* txn) {
        LocalTxnContext ctx(txn_manager_.get(), txn);
        return body(&ctx, meter);
      },
      meter,
      config_.max_retries, &outcome.attempts, &outcome.backoff_s);
  if (!result.ok()) {
    outcome.status = result.status();
    return outcome;
  }
  outcome.status = Status::OK();
  outcome.commit_ts = result->commit_ts;
  outcome.lsn = result->lsn;
  outcome.write_keys = std::move(result.value().write_keys);
  outcome.delta_keys = std::move(result.value().delta_keys);
  return outcome;
}

AnalyticsSession SharedEngine::BeginAnalytics(WorkMeter* meter) {
  (void)meter;  // no maintenance needed: single up-to-date copy
  AnalyticsSession session;
  session.snapshot = oracle_.last_committed();
  session.source =
      std::make_unique<RowDataSource>(&catalog_, session.snapshot);
  return session;
}

size_t SharedEngine::Vacuum() {
  // Every snapshot taken from now on sees last_committed; versions that
  // ended at or before it are unreachable.
  obs::ScopedSpan span(obs_.tracer, obs_.clock, "vacuum", "maint",
                       obs::kTrackEngine);
  const size_t dropped = catalog_.VacuumAll(oracle_.last_committed());
  if (obs_.metrics != nullptr) {
    obs_.metrics->GetCounter(obs::kStoreVacuumedVersions)->Inc(dropped);
  }
  span.AppendArgs("\"versions\":" + std::to_string(dropped));
  return dropped;
}

Status SharedEngine::Reset() {
  if (!loaded_) return Status::Internal("FinishLoad not called");
  catalog_.CopyContentsFrom(snapshot_);
  oracle_.ResetTo(1);
  txn_manager_->ResetLsn(1);
  return Status::OK();
}

}  // namespace hattrick
