#include "engine/isolated_engine.h"

#include <algorithm>
#include <cassert>

#include "engine/shared_engine.h"

namespace hattrick {

IsolatedEngine::IsolatedEngine(IsolatedEngineConfig config)
    : config_(std::move(config)) {
  assert(config_.num_replicas >= 1);
}

void IsolatedEngine::FanOutSink::OnCommit(const WalRecord& record) {
  for (Standby& standby : engine_->replicas_) {
    standby.stream->OnCommit(record);
  }
  const obs::Observability& o = engine_->obs_;
  if (o.tracer != nullptr && o.clock != nullptr) {
    o.tracer->Instant("wal-ship", "repl", obs::kTrackEngine, o.clock->Now(),
                      "\"lsn\":" + std::to_string(record.lsn));
  }
}

Status IsolatedEngine::Create(const DatabaseSpec& spec) {
  if (created_) return Status::Internal("Create called twice");
  BuildCatalog(spec, /*with_indexes=*/true, &primary_);
  BuildCatalog(spec, /*with_indexes=*/false, &snapshot_);
  replicas_.reserve(static_cast<size_t>(config_.num_replicas));
  for (int i = 0; i < config_.num_replicas; ++i) {
    Standby standby;
    standby.catalog = std::make_unique<Catalog>();
    BuildCatalog(spec, /*with_indexes=*/true, standby.catalog.get());
    standby.stream = std::make_unique<WalStream>();
    standby.replica = std::make_unique<Replica>(standby.catalog.get(),
                                                standby.stream.get());
    if (config_.fault.enabled) {
      // Mix the standby index into the seed so standbys fail
      // independently, while each schedule stays seed-deterministic.
      FaultConfig per_standby = config_.fault;
      per_standby.seed = config_.fault.seed ^
                         (0x9e3779b97f4a7c15ull * static_cast<uint64_t>(i + 1));
      standby.injector = std::make_unique<FaultInjector>(per_standby);
      standby.stream->SetFaultInjector(standby.injector.get());
      standby.replica->SetFaultInjector(standby.injector.get());
    }
    replicas_.push_back(std::move(standby));
  }
  txn_manager_ = std::make_unique<TxnManager>(&primary_, &oracle_, &sink_);
  created_ = true;
  return Status::OK();
}

Status IsolatedEngine::BulkLoad(const std::string& table,
                                const std::vector<Row>& rows) {
  if (!created_) return Status::Internal("Create not called");
  if (loaded_) return Status::Internal("load already finished");
  // Base backup: every node loads the same data outside the WAL channel.
  HATTRICK_RETURN_IF_ERROR(BulkLoadInto(&primary_, table, rows));
  for (Standby& standby : replicas_) {
    HATTRICK_RETURN_IF_ERROR(
        BulkLoadInto(standby.catalog.get(), table, rows));
  }
  return Status::OK();
}

Status IsolatedEngine::FinishLoad() {
  if (loaded_) return Status::Internal("load already finished");
  snapshot_.CopyContentsFrom(primary_);
  oracle_.ResetTo(1);
  for (Standby& standby : replicas_) {
    standby.replica->ResetTo(/*lsn=*/0, /*ts=*/1);
  }
  loaded_ = true;
  return Status::OK();
}

TxnOutcome IsolatedEngine::ExecuteTransaction(const TxnBody& body,
                                              uint32_t client_id,
                                              uint64_t txn_num,
                                              WorkMeter* meter) {
  TxnOutcome outcome;
  const uint64_t bytes_before = meter != nullptr ? meter->wal_bytes : 0;
  StatusOr<CommitResult> result = txn_manager_->RunWithRetries(
      config_.isolation, client_id, txn_num,
      [&](Transaction* txn) {
        LocalTxnContext ctx(txn_manager_.get(), txn);
        return body(&ctx, meter);
      },
      meter, config_.max_retries, &outcome.attempts, &outcome.backoff_s);
  if (!result.ok()) {
    outcome.status = result.status();
    return outcome;
  }
  outcome.status = Status::OK();
  outcome.commit_ts = result->commit_ts;
  outcome.lsn = result->lsn;
  outcome.write_keys = std::move(result.value().write_keys);
  outcome.delta_keys = std::move(result.value().delta_keys);
  if (result->lsn != 0) {  // write transaction: replication semantics apply
    outcome.wait = CommitWaitFor(
        result->lsn, meter != nullptr ? meter->wal_bytes - bytes_before : 0);
  }
  return outcome;
}

CommitWait IsolatedEngine::CommitWaitFor(uint64_t lsn, uint64_t wal_bytes) {
  CommitWait wait;
  switch (config_.mode) {
    case ReplicationMode::kAsync:
      break;
    case ReplicationMode::kSyncShip:
      wait.kind = CommitWait::Kind::kShipDelay;
      wait.lsn = lsn;
      wait.bytes = wal_bytes;
      break;
    case ReplicationMode::kRemoteApply:
      wait.kind = CommitWait::Kind::kReplicaApplied;
      wait.lsn = lsn;
      break;
  }
  double throttle = 0;
  const size_t backlog = MaxRetainedRecords();
  if (backlog > config_.max_backlog_records) {
    const double excess =
        static_cast<double>(backlog - config_.max_backlog_records);
    throttle = std::min(config_.backpressure_stall_cap_s,
                        config_.backpressure_stall_s * excess);
  }
  for (const Standby& standby : replicas_) {
    if (standby.injector != nullptr) {
      throttle = std::max(throttle, standby.injector->ShipDelaySeconds(lsn));
    }
  }
  if (throttle > 0) {
    wait.throttle_s = throttle;
    throttle_seconds_total_.fetch_add(throttle, std::memory_order_relaxed);
  }
  return wait;
}

AnalyticsSession IsolatedEngine::BeginAnalytics(WorkMeter* meter) {
  (void)meter;  // replay runs as MaintenanceStep, not inside queries
  // Round-robin load balancing across the standbys.
  const size_t index = next_session_.fetch_add(1) %
                       static_cast<size_t>(config_.num_replicas);
  const Standby& standby = replicas_[index];
  AnalyticsSession session;
  session.snapshot = standby.replica->Snapshot();
  session.source = std::make_unique<RowDataSource>(standby.catalog.get(),
                                                   session.snapshot);
  return session;
}

bool IsolatedEngine::MaintenanceStep(WorkMeter* meter) {
  // Advance the furthest-behind standby first (one shared maintenance
  // budget; with one standby this is exactly its single-threaded applier).
  Standby* laggard = nullptr;
  for (Standby& standby : replicas_) {
    if (!standby.replica->last_error().ok()) continue;  // dead standby
    if (laggard == nullptr ||
        standby.replica->applied_lsn() < laggard->replica->applied_lsn()) {
      laggard = &standby;
    }
  }
  if (laggard == nullptr) return false;
  const Replica::StepResult result = laggard->replica->Step(meter);
  const uint64_t lsn = laggard->replica->applied_lsn();
  switch (result) {
    case Replica::StepResult::kApplied:
      if (applied_records_metric_ != nullptr) applied_records_metric_->Inc();
      return true;
    case Replica::StepResult::kDuplicateSkipped:
    case Replica::StepResult::kResendRequested:
      // Recovery work happened; the queue moved, keep pumping.
      return true;
    case Replica::StepResult::kRecovered:
      if (crash_recoveries_metric_ != nullptr) crash_recoveries_metric_->Inc();
      if (obs_.tracer != nullptr && obs_.clock != nullptr) {
        obs_.tracer->Instant("replica-recover", "repl", obs::kTrackApplier,
                             obs_.clock->Now(),
                             "\"resync_from_lsn\":" + std::to_string(lsn));
      }
      return true;
    case Replica::StepResult::kError:
      // Surface the failure in the trace; the applier parks rather than
      // spinning on a broken stream.
      if (obs_.tracer != nullptr && obs_.clock != nullptr) {
        obs_.tracer->Instant(
            "replica-error", "repl", obs::kTrackApplier, obs_.clock->Now(),
            "\"error\":\"" + laggard->replica->last_error().message() + "\"");
      }
      return false;
    case Replica::StepResult::kBackingOff:
    case Replica::StepResult::kIdle:
      // Nothing useful to do right now: idle the applier. The next
      // committed record wakes it again (and drains the backoff).
      return false;
  }
  return false;
}

bool IsolatedEngine::IsApplied(uint64_t lsn) const {
  // REMOTE_APPLY with multiple synchronous standbys: all must replay.
  return applied_lsn() >= lsn;
}

uint64_t IsolatedEngine::applied_lsn() const {
  uint64_t min_applied = UINT64_MAX;
  for (const Standby& standby : replicas_) {
    min_applied = std::min(min_applied, standby.replica->applied_lsn());
  }
  return min_applied;
}

size_t IsolatedEngine::ReplicationLag() const {
  size_t lag = 0;
  for (const Standby& standby : replicas_) {
    lag = std::max(lag, standby.replica->Lag());
  }
  return lag;
}

size_t IsolatedEngine::MaintenancePending() const {
  // Only healthy standbys count: an errored applier never makes
  // progress, so reporting its lag would have the driver poll forever.
  size_t lag = 0;
  for (const Standby& standby : replicas_) {
    if (!standby.replica->last_error().ok()) continue;
    lag = std::max(lag, standby.replica->Lag());
  }
  return lag;
}

size_t IsolatedEngine::MaxRetainedRecords() const {
  size_t depth = 0;
  for (const Standby& standby : replicas_) {
    depth = std::max(depth, standby.stream->RetainedRecords());
  }
  return depth;
}

size_t IsolatedEngine::Vacuum() {
  obs::ScopedSpan span(obs_.tracer, obs_.clock, "vacuum", "maint",
                       obs::kTrackEngine);
  size_t dropped = primary_.VacuumAll(oracle_.last_committed());
  for (Standby& standby : replicas_) {
    dropped += standby.catalog->VacuumAll(standby.replica->Snapshot());
  }
  if (obs_.metrics != nullptr) {
    obs_.metrics->GetCounter(obs::kStoreVacuumedVersions)->Inc(dropped);
  }
  span.AppendArgs("\"versions\":" + std::to_string(dropped));
  return dropped;
}

void IsolatedEngine::OnObservabilityChanged() {
  if (obs_.metrics == nullptr) {
    applied_records_metric_ = nullptr;
    crash_recoveries_metric_ = nullptr;
    for (Standby& standby : replicas_) {
      for (IndexInfo* index : standby.catalog->AllIndexes()) {
        index->tree->set_split_counter(nullptr);
      }
    }
    return;
  }
  applied_records_metric_ = obs_.metrics->GetCounter(obs::kReplAppliedRecords);
  crash_recoveries_metric_ =
      obs_.metrics->GetCounter(obs::kReplCrashRecoveries);
  obs_.metrics->GetGauge(obs::kReplBacklogRecords)->SetProbe([this] {
    return static_cast<double>(ReplicationLag());
  });
  obs_.metrics->GetGauge(obs::kReplAppliedLsn)->SetProbe([this] {
    return static_cast<double>(applied_lsn());
  });
  obs_.metrics->GetGauge(obs::kReplShippedBytes)->SetProbe([this] {
    double total = 0;
    for (const Standby& standby : replicas_) {
      total += static_cast<double>(standby.stream->shipped_bytes());
    }
    return total;
  });
  obs_.metrics->GetGauge(obs::kReplRetainedRecords)->SetProbe([this] {
    return static_cast<double>(MaxRetainedRecords());
  });
  obs_.metrics->GetGauge(obs::kReplThrottleSeconds)->SetProbe([this] {
    return throttle_seconds_total_.load(std::memory_order_relaxed);
  });
  // Recovery and fault accounting, summed across standbys.
  const auto sum_probe = [this](uint64_t (WalStream::*getter)() const) {
    return [this, getter] {
      double total = 0;
      for (const Standby& standby : replicas_) {
        total += static_cast<double>((standby.stream.get()->*getter)());
      }
      return total;
    };
  };
  obs_.metrics->GetGauge(obs::kReplResendRequests)
      ->SetProbe(sum_probe(&WalStream::resends_requested));
  obs_.metrics->GetGauge(obs::kReplResendsShipped)
      ->SetProbe(sum_probe(&WalStream::resends_delivered));
  obs_.metrics->GetGauge(obs::kReplResendsLost)
      ->SetProbe(sum_probe(&WalStream::resends_lost));
  obs_.metrics->GetGauge(obs::kFaultInjectedDrops)
      ->SetProbe(sum_probe(&WalStream::injected_drops));
  obs_.metrics->GetGauge(obs::kFaultInjectedDuplicates)
      ->SetProbe(sum_probe(&WalStream::injected_duplicates));
  obs_.metrics->GetGauge(obs::kFaultInjectedReorders)
      ->SetProbe(sum_probe(&WalStream::injected_reorders));
  obs_.metrics->GetGauge(obs::kReplDuplicateSkips)->SetProbe([this] {
    double total = 0;
    for (const Standby& standby : replicas_) {
      total += static_cast<double>(standby.replica->duplicate_skips());
    }
    return total;
  });
  // Standby trees split during replay too; wire them onto the same
  // counter the base class attached to the primary's indexes.
  obs::Counter* splits = obs_.metrics->GetCounter(obs::kStoreBtreeSplits);
  for (Standby& standby : replicas_) {
    for (IndexInfo* index : standby.catalog->AllIndexes()) {
      index->tree->set_split_counter(splits);
    }
  }
}

Status IsolatedEngine::Reset() {
  if (!loaded_) return Status::Internal("FinishLoad not called");
  primary_.CopyContentsFrom(snapshot_);
  oracle_.ResetTo(1);
  txn_manager_->ResetLsn(1);
  for (Standby& standby : replicas_) {
    standby.catalog->CopyContentsFrom(snapshot_);
    standby.stream->Reset();
    standby.replica->ResetTo(/*lsn=*/0, /*ts=*/1);
  }
  next_session_.store(0);
  throttle_seconds_total_.store(0, std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace hattrick
