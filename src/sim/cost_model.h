#ifndef HATTRICK_SIM_COST_MODEL_H_
#define HATTRICK_SIM_COST_MODEL_H_

#include "common/work_meter.h"

namespace hattrick {

/// Converts metered work into virtual CPU time.
///
/// The constants are calibration parameters, not measurements of the
/// paper's hardware: the reproduction targets the *shape* of the results
/// (who wins, crossovers, scaling trends), not absolute numbers. Values
/// are loosely modeled on an in-memory engine: ~1 us per B+-tree node,
/// tens of ns per columnar cell, a few us of fixed cost per statement.
struct CostModel {
  // Microseconds per metered unit.
  double us_row_read = 0.60;
  double us_row_write = 1.20;
  double us_index_node = 0.80;
  double us_index_write = 1.50;
  double us_column_value = 0.012;
  double us_output_row = 0.15;
  double us_hash_probe = 0.10;
  double us_wal_record = 3.0;    // fsync/commit-path cost per record
  double us_wal_byte = 0.004;    // log serialization / replay decode
  double us_merged_row = 0.80;   // delta row merged into the column store
  double us_version_hop = 0.08;  // MVCC chain traversal
  // SSI-style read tracking (SIREAD/predicate locks) paid per tracked
  // read under serializable isolation only; read committed skips it,
  // which is why its frontier sits above serializable (Figure 6a).
  double us_predicate_lock = 8.0;

  /// Fixed per-operation overheads (parse/plan/protocol/commit path).
  double txn_fixed_us = 400.0;
  double query_fixed_us = 2000.0;

  /// CPU-work multipliers (distributed deployments pay protocol CPU, the
  /// paper's "high CPU-overhead of the TCP/IP stack" for TiDB-Dist).
  double t_work_multiplier = 1.0;
  double a_work_multiplier = 1.0;

  /// Pure latency (no CPU) added to every transaction (network round
  /// trips in distributed deployments).
  double txn_extra_latency_us = 0.0;

  /// ON-mode commit wait: ship + standby fsync latency.
  double ship_fixed_us = 200.0;
  double ship_us_per_byte = 0.002;

  /// Virtual CPU seconds for a transaction's metered work.
  double TxnCpuSeconds(const WorkMeter& m) const {
    return (txn_fixed_us + WorkUs(m)) * t_work_multiplier * 1e-6;
  }

  /// Virtual CPU seconds for an analytical query's metered work
  /// (including any merge/maintenance charged to it).
  double QueryCpuSeconds(const WorkMeter& m) const {
    return (query_fixed_us + WorkUs(m)) * a_work_multiplier * 1e-6;
  }

  /// Replay-cost multiplier: PostgreSQL-style single-threaded WAL replay
  /// pays page lookups, full-page writes and fsyncs beyond the raw work
  /// counters; >1 makes the standby applier a potential bottleneck at
  /// high T rates (the source of the paper's stale queries in ON mode).
  double replay_multiplier = 1.0;

  /// Virtual CPU seconds for replaying WAL on the standby.
  double ReplayCpuSeconds(const WorkMeter& m) const {
    return WorkUs(m) * replay_multiplier * 1e-6;
  }

  /// Commit-wait latency for shipping `bytes` (REPLICATION mode ON).
  double ShipDelaySeconds(uint64_t bytes) const {
    return (ship_fixed_us + ship_us_per_byte * static_cast<double>(bytes)) *
           1e-6;
  }

  /// Raw microseconds for the metered counters.
  double WorkUs(const WorkMeter& m) const {
    return us_row_read * static_cast<double>(m.rows_read) +
           us_row_write * static_cast<double>(m.rows_written) +
           us_index_node * static_cast<double>(m.index_nodes) +
           us_index_write * static_cast<double>(m.index_writes) +
           us_column_value * static_cast<double>(m.column_values) +
           us_output_row * static_cast<double>(m.output_rows) +
           us_hash_probe * static_cast<double>(m.hash_probes) +
           us_wal_record * static_cast<double>(m.wal_records) +
           us_wal_byte * static_cast<double>(m.wal_bytes) +
           us_merged_row * static_cast<double>(m.merged_rows) +
           us_version_hop * static_cast<double>(m.version_hops) +
           us_predicate_lock * static_cast<double>(m.predicate_locks);
  }
};

}  // namespace hattrick

#endif  // HATTRICK_SIM_COST_MODEL_H_
