#ifndef HATTRICK_SIM_LOCK_MODEL_H_
#define HATTRICK_SIM_LOCK_MODEL_H_

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "common/clock.h"

namespace hattrick {

/// Virtual-time row-lock contention model.
///
/// In the simulator, engine operations execute serially at their issue
/// instants, so the engines' real conflict detection never observes two
/// in-flight writers. Contention must therefore be modeled in virtual
/// time: each written row is "held" until the writing transaction's
/// completion time, and a later transaction writing the same row waits
/// for the release before its own service begins — exactly the
/// lock-waiting the paper identifies as the cause of poor frontiers at
/// small scale factors (Sections 6.2, 6.4).
///
/// `hold_fraction` scales the hold window: 1.0 models pessimistic
/// engines holding write locks until commit (PostgreSQL); smaller values
/// model optimistic engines that only synchronize during the validation
/// window (System-X: "if a transaction X is in validation phase and
/// another transaction Y reads the changes X made ... Y blocks until X
/// commits").
class RowLockModel {
 public:
  explicit RowLockModel(double hold_fraction = 1.0)
      : hold_fraction_(hold_fraction) {}

  /// Computes the wait before a transaction issued at `now` that writes
  /// `keys` can start, and marks the rows held until
  /// wait_end + service * hold_fraction. `hold_override` (when >= 0)
  /// replaces the model's hold fraction for THIS acquisition — used for
  /// commutative delta writes, which hold their rows only across the
  /// install/publish instants rather than the full validation window.
  template <typename KeyContainer>
  double AcquireAll(const KeyContainer& keys, TimePoint now,
                    double service_seconds, double hold_override = -1.0) {
    double start = now;
    for (const uint64_t key : keys) {
      const auto it = held_until_.find(key);
      if (it != held_until_.end()) start = std::max(start, it->second);
    }
    const double fraction =
        hold_override >= 0 ? hold_override : hold_fraction_;
    const double release = start + service_seconds * fraction;
    for (const uint64_t key : keys) {
      auto [it, inserted] = held_until_.emplace(key, release);
      if (!inserted) it->second = std::max(it->second, release);
    }
    return start - now;  // wait time
  }

  /// Drops entries released before `horizon` (periodic cleanup).
  void Trim(TimePoint horizon) {
    for (auto it = held_until_.begin(); it != held_until_.end();) {
      if (it->second < horizon) {
        it = held_until_.erase(it);
      } else {
        ++it;
      }
    }
  }

  void Reset() { held_until_.clear(); }
  size_t size() const { return held_until_.size(); }
  double hold_fraction() const { return hold_fraction_; }

 private:
  double hold_fraction_;
  std::unordered_map<uint64_t, TimePoint> held_until_;
};

}  // namespace hattrick

#endif  // HATTRICK_SIM_LOCK_MODEL_H_
