#ifndef HATTRICK_SIM_WAIT_QUEUE_H_
#define HATTRICK_SIM_WAIT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

namespace hattrick {

/// Virtual-time condition variable keyed by a monotonically increasing
/// sequence number (LSN). Clients in REMOTE_APPLY mode block until the
/// standby has replayed their commit; the applier publishes progress and
/// wakes them.
///
/// Thread confinement: single-threaded by construction (driven entirely
/// from the simulation event loop), hence no mutex and no thread-safety
/// annotations; do not share across OS threads.
class LsnWaitQueue {
 public:
  using Callback = std::function<void()>;

  /// Runs `cb` immediately if `lsn` is already published, otherwise
  /// queues it.
  void WaitFor(uint64_t lsn, Callback cb) {
    if (lsn <= published_) {
      cb();
      return;
    }
    waiters_.emplace(lsn, std::move(cb));
  }

  /// Publishes progress through `lsn` and wakes all satisfied waiters in
  /// LSN order.
  void Publish(uint64_t lsn) {
    if (lsn <= published_) return;
    published_ = lsn;
    std::vector<Callback> ready;
    auto it = waiters_.begin();
    while (it != waiters_.end() && it->first <= lsn) {
      ready.push_back(std::move(it->second));
      it = waiters_.erase(it);
    }
    for (Callback& cb : ready) cb();
  }

  uint64_t published() const { return published_; }
  size_t waiting() const { return waiters_.size(); }

  void Reset() {
    waiters_.clear();
    published_ = 0;
  }

 private:
  std::multimap<uint64_t, Callback> waiters_;
  uint64_t published_ = 0;
};

}  // namespace hattrick

#endif  // HATTRICK_SIM_WAIT_QUEUE_H_
