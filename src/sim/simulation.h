#ifndef HATTRICK_SIM_SIMULATION_H_
#define HATTRICK_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/clock.h"

namespace hattrick {

/// A discrete-event simulation kernel with a virtual clock.
///
/// This is the substitution for the paper's wall-clock experiments on
/// 32-core servers (DESIGN.md Section 2): client *logic* executes for
/// real against the real engines; the simulator only decides *when* each
/// operation completes, using metered work converted to service time on
/// modeled core pools. Runs are deterministic and independent of the host
/// machine's core count.
class Simulation {
 public:
  using Callback = std::function<void()>;

  Simulation() = default;

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  TimePoint Now() const { return clock_.Now(); }
  const Clock* clock() const { return &clock_; }

  /// Schedules `cb` to run at Now() + delay (delay >= 0). Events at equal
  /// times fire in scheduling order (stable).
  void Schedule(double delay, Callback cb);

  /// Runs events until the queue empties or the next event is past
  /// `until`; the clock ends at min(until, last event time >= until).
  void RunUntil(TimePoint until);

  /// Runs all remaining events.
  void RunToCompletion();

  /// Number of events executed so far (diagnostics).
  uint64_t events_executed() const { return events_executed_; }

  bool empty() const { return queue_.empty(); }

 private:
  struct Event {
    TimePoint time;
    uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  VirtualClock clock_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  uint64_t next_seq_ = 0;
  uint64_t events_executed_ = 0;
};

}  // namespace hattrick

#endif  // HATTRICK_SIM_SIMULATION_H_
