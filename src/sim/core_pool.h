#ifndef HATTRICK_SIM_CORE_POOL_H_
#define HATTRICK_SIM_CORE_POOL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "obs/metrics.h"
#include "sim/simulation.h"

namespace hattrick {

/// A processor-sharing multi-core server in virtual time.
///
/// Thread confinement: like everything under src/sim/, this class is
/// single-threaded by construction — all state is mutated from the
/// simulation's event loop, which runs on one thread in virtual time.
/// It therefore carries no mutexes and no thread-safety annotations;
/// do not share instances across OS threads.
///
/// Jobs carry a CPU demand in seconds. With n active jobs on m cores each
/// job progresses at rate min(1, m/n) — the standard egalitarian
/// processor-sharing model of a multi-core box running n runnable
/// threads. This is what produces the paper's interference shapes: on a
/// shared pool, adding A-clients slows T-transactions (frontier near or
/// below the proportional line); with dedicated pools per workload they
/// don't interact (frontier near the bounding box).
class CorePool {
 public:
  using Callback = std::function<void()>;

  /// `cores` may be fractional (e.g. modeling a throttled container).
  CorePool(Simulation* sim, std::string name, double cores);

  CorePool(const CorePool&) = delete;
  CorePool& operator=(const CorePool&) = delete;

  /// Submits a job with `cpu_seconds` demand; `done` fires when it
  /// finishes. Zero-demand jobs complete via an immediate event.
  void Submit(double cpu_seconds, Callback done);

  /// Submits `cpu_seconds` of demand split across `ways` concurrent jobs
  /// of cpu_seconds/ways each — the simulator's model of one query
  /// executing at dop=ways. `done` fires once, when the last piece
  /// finishes. On an idle pool with >= ways free cores the work completes
  /// in 1/ways the time of Submit; under load the pieces contend like any
  /// other jobs, so dop>1 analytics push harder against T-clients
  /// (exactly the frontier-shape change Figure 5 varies). ways <= 1
  /// degenerates to Submit.
  void SubmitParallel(double cpu_seconds, int ways, Callback done);

  /// Number of currently active jobs.
  size_t active_jobs() const { return jobs_.size(); }

  /// Aggregate CPU-seconds of demand completed so far.
  double busy_seconds() const { return busy_seconds_; }

  /// Current utilization in [0, 1]: fraction of cores busy right now.
  double CurrentUtilization() const;

  const std::string& name() const { return name_; }
  double cores() const { return cores_; }

  /// Highest number of simultaneously active jobs seen so far.
  size_t peak_jobs() const { return peak_jobs_; }

  /// Parallel pieces (from SubmitParallel at ways > 1) in flight now.
  size_t parallel_pieces_in_flight() const { return parallel_pieces_; }

  /// Registers this pool's gauges under "sim.pool.<name>.*": utilization,
  /// queue_depth, queue_depth_peak, parallel_pieces, jobs_submitted,
  /// busy_seconds. Probes read pool state at snapshot time, so the pool
  /// must outlive the registry's last Snapshot().
  void RegisterMetrics(obs::MetricsRegistry* registry);

 private:
  struct Job {
    double remaining;  // cpu-seconds
    Callback done;
  };

  /// Advances all jobs' remaining work to Now() and reschedules the next
  /// completion event.
  void Advance();
  void ScheduleNextCompletion();
  double RatePerJob() const;

  Simulation* sim_;
  std::string name_;
  double cores_;
  std::unordered_map<uint64_t, Job> jobs_;
  uint64_t next_job_id_ = 1;
  TimePoint last_update_ = 0;
  uint64_t generation_ = 0;  // invalidates stale completion events
  double busy_seconds_ = 0;
  size_t peak_jobs_ = 0;
  size_t parallel_pieces_ = 0;
  uint64_t jobs_submitted_ = 0;
};

}  // namespace hattrick

#endif  // HATTRICK_SIM_CORE_POOL_H_
