#include "sim/simulation.h"

#include <cassert>

namespace hattrick {

void Simulation::Schedule(double delay, Callback cb) {
  assert(delay >= 0 && "cannot schedule into the past");
  if (delay < 0) delay = 0;
  queue_.push(Event{clock_.Now() + delay, next_seq_++, std::move(cb)});
}

void Simulation::RunUntil(TimePoint until) {
  while (!queue_.empty() && queue_.top().time <= until) {
    Event event = queue_.top();
    queue_.pop();
    clock_.AdvanceTo(event.time);
    ++events_executed_;
    event.cb();
  }
  if (clock_.Now() < until) clock_.AdvanceTo(until);
}

void Simulation::RunToCompletion() {
  while (!queue_.empty()) {
    Event event = queue_.top();
    queue_.pop();
    clock_.AdvanceTo(event.time);
    ++events_executed_;
    event.cb();
  }
}

}  // namespace hattrick
