#include "sim/core_pool.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <memory>
#include <vector>

namespace hattrick {

namespace {
constexpr double kEpsilon = 1e-12;
}  // namespace

CorePool::CorePool(Simulation* sim, std::string name, double cores)
    : sim_(sim), name_(std::move(name)), cores_(cores) {
  assert(cores_ > 0);
}

double CorePool::RatePerJob() const {
  if (jobs_.empty()) return 0;
  return std::min(1.0, cores_ / static_cast<double>(jobs_.size()));
}

double CorePool::CurrentUtilization() const {
  if (jobs_.empty()) return 0;
  return std::min(1.0, static_cast<double>(jobs_.size()) / cores_);
}

void CorePool::Advance() {
  const TimePoint now = sim_->Now();
  const double dt = now - last_update_;
  if (dt > 0 && !jobs_.empty()) {
    const double rate = RatePerJob();
    for (auto& [id, job] : jobs_) {
      job.remaining = std::max(0.0, job.remaining - rate * dt);
    }
    busy_seconds_ +=
        dt * std::min(static_cast<double>(jobs_.size()), cores_);
  }
  last_update_ = now;
}

void CorePool::Submit(double cpu_seconds, Callback done) {
  assert(cpu_seconds >= 0);
  Advance();
  jobs_.emplace(next_job_id_++, Job{cpu_seconds, std::move(done)});
  ++jobs_submitted_;
  peak_jobs_ = std::max(peak_jobs_, jobs_.size());
  ScheduleNextCompletion();
}

void CorePool::SubmitParallel(double cpu_seconds, int ways, Callback done) {
  if (ways <= 1) {
    Submit(cpu_seconds, std::move(done));
    return;
  }
  assert(cpu_seconds >= 0);
  Advance();
  // Shared countdown: the last piece to finish fires the caller's done.
  auto remaining = std::make_shared<int>(ways);
  auto shared_done = std::make_shared<Callback>(std::move(done));
  const double piece = cpu_seconds / static_cast<double>(ways);
  parallel_pieces_ += static_cast<size_t>(ways);
  for (int i = 0; i < ways; ++i) {
    jobs_.emplace(next_job_id_++, Job{piece, [this, remaining, shared_done] {
                    --parallel_pieces_;
                    if (--*remaining == 0) (*shared_done)();
                  }});
  }
  jobs_submitted_ += static_cast<uint64_t>(ways);
  peak_jobs_ = std::max(peak_jobs_, jobs_.size());
  ScheduleNextCompletion();
}

void CorePool::RegisterMetrics(obs::MetricsRegistry* registry) {
  const std::string prefix = "sim.pool." + name_ + ".";
  registry->GetGauge(prefix + "utilization")
      ->SetProbe([this] { return CurrentUtilization(); });
  registry->GetGauge(prefix + "queue_depth")
      ->SetProbe([this] { return static_cast<double>(jobs_.size()); });
  registry->GetGauge(prefix + "queue_depth_peak")
      ->SetProbe([this] { return static_cast<double>(peak_jobs_); });
  registry->GetGauge(prefix + "parallel_pieces")
      ->SetProbe([this] { return static_cast<double>(parallel_pieces_); });
  registry->GetGauge(prefix + "jobs_submitted")
      ->SetProbe([this] { return static_cast<double>(jobs_submitted_); });
  registry->GetGauge(prefix + "busy_seconds")
      ->SetProbe([this] { return busy_seconds_; });
}

void CorePool::ScheduleNextCompletion() {
  const uint64_t generation = ++generation_;
  if (jobs_.empty()) return;
  double min_remaining = std::numeric_limits<double>::infinity();
  for (const auto& [id, job] : jobs_) {
    min_remaining = std::min(min_remaining, job.remaining);
  }
  const double delay = min_remaining / RatePerJob();
  sim_->Schedule(delay, [this, generation] {
    if (generation != generation_) return;  // superseded by a later change
    Advance();
    std::vector<Callback> finished;
    for (auto it = jobs_.begin(); it != jobs_.end();) {
      if (it->second.remaining <= kEpsilon) {
        finished.push_back(std::move(it->second.done));
        it = jobs_.erase(it);
      } else {
        ++it;
      }
    }
    ScheduleNextCompletion();
    for (Callback& cb : finished) cb();
  });
}

}  // namespace hattrick
