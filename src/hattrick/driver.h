#ifndef HATTRICK_HATTRICK_DRIVER_H_
#define HATTRICK_HATTRICK_DRIVER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/histogram.h"
#include "engine/htap_engine.h"
#include "hattrick/freshness.h"
#include "hattrick/queries.h"
#include "hattrick/transactions.h"
#include "obs/observability.h"
#include "obs/plan_profile.h"
#include "sim/cost_model.h"

namespace hattrick {

/// One benchmark run: a fixed (T-clients, A-clients) operating point
/// executed for a warm-up period followed by a measurement period
/// (Section 5.3 / 6.1). Each client issues requests back-to-back: a new
/// request as soon as the previous result returns.
struct WorkloadConfig {
  int t_clients = 0;
  int a_clients = 0;
  double warmup_seconds = 0.3;
  double measure_seconds = 1.5;
  uint64_t seed = 7;
  /// Intra-query parallelism of each A-client (morsel-driven; see
  /// exec/morsel.h). The wall-clock driver runs each query on `dop`
  /// worker threads; the simulated driver charges each query's work
  /// across `dop` cores of the A pool (CorePool::SubmitParallel). 1 — the
  /// paper-faithful default, matching its single-stream query clients —
  /// leaves all existing figures unchanged.
  int dop = 1;
  /// Analytical execution mode (see ExecContext::vectorized): vectorized
  /// batch execution (default) or the row-at-a-time oracle. Results and
  /// metered work are bit-identical; the knob exists for differential
  /// testing and benchmarking.
  bool vectorized = true;
  /// Rows per column-vector batch; 0 (default) means DefaultBatchRows().
  int batch_rows = 0;
  /// EXPLAIN ANALYZE profiling of every analytical query: each execution
  /// runs with an ExecContext::profile attached and the per-query trees
  /// are aggregated into RunMetrics::query_profiles. Off by default —
  /// profiling never changes results or metered work, but the per-call
  /// accounting is not free.
  bool profile_queries = false;
};

/// Metrics extracted from one run. Throughput counts completions whose
/// results returned within the measurement window; only successfully
/// committed transactions count (tps) and only finished queries count
/// (qps), as in the paper.
struct RunMetrics {
  double t_throughput = 0;  // tps
  double a_throughput = 0;  // qps
  uint64_t committed = 0;
  uint64_t failed = 0;   // transactions that exhausted retries
  uint64_t aborts = 0;   // retried validation aborts
  uint64_t queries = 0;

  /// Per-transaction-type breakdown (indexed by TxnType): measured-window
  /// commits and retried aborts charged to the type that conflicted.
  uint64_t committed_by_type[3] = {0, 0, 0};
  uint64_t aborts_by_type[3] = {0, 0, 0};

  /// Virtual (sim) / wall (threaded) seconds T-clients spent queued on
  /// the row-lock model before their transactions could run.
  double lock_wait_seconds = 0;

  Sampler txn_latency;                     // seconds, all types
  Sampler txn_latency_by_type[3];          // indexed by TxnType
  Sampler query_latency;                   // seconds, all queries
  Sampler query_latency_by_id[kNumQueries];
  Sampler freshness;                       // seconds, per measured query

  double measure_seconds = 0;

  /// End-of-run snapshot of the run's metrics registry (txn / repl /
  /// merge / pool domain metrics). Always populated by both drivers.
  obs::MetricsSnapshot observed;

  /// Aggregated EXPLAIN ANALYZE profile per SSB query (all executions of
  /// that query folded together, warm-up included). Empty unless
  /// WorkloadConfig::profile_queries was set.
  obs::PlanProfile query_profiles[kNumQueries];
};

/// Placement and cost parameters of a simulated deployment.
struct SimSetup {
  /// Core pools. With separate_pools=false (single machine: shared and
  /// hybrid designs) every job runs on the T pool and `a_cores` is
  /// ignored; with separate_pools=true (isolated / distributed designs)
  /// transactions run on the T pool while queries and WAL replay run on
  /// the A pool.
  double t_cores = 8;
  double a_cores = 8;
  bool separate_pools = false;

  CostModel cost;

  /// Row-lock contention model: fraction of a transaction's service time
  /// during which its written rows block other writers (1.0 pessimistic,
  /// lower for optimistic validation-window-only engines).
  double lock_hold_fraction = 1.0;

  /// Hold fraction for rows written only by commutative delta
  /// increments: a delta "holds" its row just across the lock-free
  /// install/publish instants (no read-modify-write or validation
  /// span), so concurrent payments on a hot supplier barely queue.
  double delta_hold_fraction = 0.05;

  /// Whether the engine has a background applier to drive (the isolated
  /// engine's standby WAL replay).
  bool has_maintenance = false;
};

/// Canned deployments mirroring the paper's testbed (Section 6.1): equal
/// single nodes for PostgreSQL/System-X/TiDB, two nodes for
/// PostgreSQL-SR, 3 TiKV + 2 TiFlash nodes for TiDB-Dist.
SimSetup SharedSimSetup();    // PostgreSQL-like, one node
SimSetup IsolatedSimSetup();  // PostgreSQL-SR-like, two nodes
SimSetup HybridSimSetup();    // System-X / single-node TiDB
SimSetup TidbDistSimSetup();  // distributed TiDB, flat-surcharge model
/// Distributed TiDB with real sharding: N nodes' worth of cores, and the
/// cross-shard coordination latency charged per participant through
/// TxnOutcome::shards_touched instead of a flat surcharge. A one-node
/// deployment still pays the distributed codepath's CPU cost (as a
/// one-TiKV TiDB does), so the N sweep isolates pure scale-out.
SimSetup ShardedSimSetup(uint32_t shards);

/// Virtual-time benchmark driver: executes the HATtrick procedure against
/// a real engine with simulated clients on modeled core pools (see
/// DESIGN.md for why this substitutes for the paper's wall-clock runs).
/// Deterministic: identical seeds give identical metrics.
class SimDriver {
 public:
  /// `engine` must be loaded (FinishLoad called). The driver resets the
  /// engine at the start of every Run.
  SimDriver(HtapEngine* engine, WorkloadContext* context, SimSetup setup);

  /// Executes one operating point and returns its metrics.
  RunMetrics Run(const WorkloadConfig& config);

  /// Attaches a span tracer for subsequent Runs (nullptr detaches).
  /// Spans record *virtual* time; the tracer is Clear()ed at the start of
  /// each Run, so two same-seed runs export byte-identical traces.
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  HtapEngine* engine_;
  WorkloadContext* context_;
  SimSetup setup_;
  obs::Tracer* tracer_ = nullptr;
};

/// Wall-clock driver: real client threads against the thread-safe
/// engines. Used by the examples and integration tests to demonstrate
/// the system live; the figure-generating benchmarks use SimDriver.
class ThreadedDriver {
 public:
  ThreadedDriver(HtapEngine* engine, WorkloadContext* context,
                 double ship_delay_seconds = 200e-6);

  RunMetrics Run(const WorkloadConfig& config);

  /// Attaches a span tracer for subsequent Runs (nullptr detaches).
  /// Spans record wall time through the same tracer API the simulated
  /// driver uses with virtual time.
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  HtapEngine* engine_;
  WorkloadContext* context_;
  double ship_delay_seconds_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace hattrick

#endif  // HATTRICK_HATTRICK_DRIVER_H_
