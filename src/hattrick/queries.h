#ifndef HATTRICK_HATTRICK_QUERIES_H_
#define HATTRICK_HATTRICK_QUERIES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "exec/operator.h"

namespace hattrick {

/// Number of analytical queries in the HATtrick batch (the 13 SSB
/// queries, Section 5.2.2).
inline constexpr int kNumQueries = 13;

/// Returns "Q1.1" .. "Q4.3" for query ids 0..12.
const char* QueryName(int query_id);

/// Result summary of one analytical query.
struct QueryResult {
  int query_id = 0;
  size_t rows = 0;
  /// Order-insensitive checksum over the result cells; used by the tests
  /// to verify that every engine computes identical answers on identical
  /// snapshots.
  double checksum = 0;
  /// FRESHNESS_j read-back: the last transaction number of each T-client
  /// visible in the query's snapshot (index j-1 for client j). The paper
  /// unions the FRESHNESS_j tables and cross-joins them with the query;
  /// reading them within the same snapshot-consistent source is
  /// semantically identical and is how this implementation returns them.
  std::vector<int64_t> freshness;
};

/// Executes SSB query `query_id` (0..12) against `source`, reading back
/// `num_freshness_tables` FRESHNESS_j tables. All work meters into `ctx`.
/// When ctx->dop > 1 the query runs as a morsel-parallel plan (see
/// BuildParallelQueryPlan); results are bit-identical to dop=1 because
/// SUM accumulates in fixed-point (exec/operator.h).
QueryResult RunQuery(int query_id, const DataSource& source,
                     uint32_t num_freshness_tables, ExecContext* ctx);

/// Builds the serial physical plan of query `query_id` without running it
/// (exposed for tests and plan inspection).
OperatorPtr BuildQueryPlan(int query_id, const DataSource& source);

/// Builds the morsel-parallel plan: `dop` worker shards, each scanning
/// its share of the LINEORDER morsels into a partial aggregate, merged by
/// a gather-merge exchange. `dynamic_morsels` picks dynamic claiming
/// (wall-clock) vs static round-robin (simulator; see exec/morsel.h).
/// Falls back to the serial plan when dop <= 1 or the source cannot be
/// morselized (ScanExtent == 0).
OperatorPtr BuildParallelQueryPlan(int query_id, const DataSource& source,
                                   int dop, bool dynamic_morsels);

}  // namespace hattrick

#endif  // HATTRICK_HATTRICK_QUERIES_H_
