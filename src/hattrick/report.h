#ifndef HATTRICK_HATTRICK_REPORT_H_
#define HATTRICK_HATTRICK_REPORT_H_

#include <string>
#include <vector>

#include "hattrick/frontier.h"

namespace hattrick {

/// Reporting helpers used by the figure benchmarks: every bench prints
/// the series the corresponding paper figure plots (CSV blocks a plotting
/// script can consume) plus an ASCII rendering of the frontier.

/// Prints the fixed-T lines, fixed-A lines and frontier of `grid` as CSV
/// blocks, each prefixed by "# <label> <block>".
void PrintGridCsv(const std::string& label, const GridGraph& grid);

/// Prints the frontier summary: XT, XA, coverage, proportional deviation,
/// classification, and the freshness scores at the 20:80 / 50:50 / 80:20
/// client-ratio points (the paper's f2 / f5 / f8 annotations). With
/// `per_point_metrics` set, each frontier point is followed by its
/// interference attribution (lock-wait seconds, merged rows, replayed
/// WAL records, validation aborts) from the run's metrics snapshot.
void PrintFrontierSummary(const std::string& label, const GridGraph& grid,
                          bool per_point_metrics = false);

/// ASCII scatter of one or more frontiers in an 72x24 grid; each series
/// is drawn with its own glyph, with the proportional line of the first
/// series as reference.
void PlotFrontiers(const std::vector<std::string>& labels,
                   const std::vector<const GridGraph*>& grids);

/// Runs the T:A ratio points the paper reports freshness for (20:80,
/// 50:50, 80:20 of tau_max:alpha_max) and returns their p99 freshness
/// scores, printing as it goes.
struct RatioFreshness {
  std::string ratio;  // "20:80"
  int t_clients = 0;
  int a_clients = 0;
  double p99 = 0;
  double mean = 0;
};
std::vector<RatioFreshness> MeasureRatioFreshness(const PointRunner& runner,
                                                  int tau_max,
                                                  int alpha_max);

/// Prints a RatioFreshness table.
void PrintRatioFreshness(const std::string& label,
                         const std::vector<RatioFreshness>& rows);

}  // namespace hattrick

#endif  // HATTRICK_HATTRICK_REPORT_H_
