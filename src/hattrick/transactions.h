#ifndef HATTRICK_HATTRICK_TRANSACTIONS_H_
#define HATTRICK_HATTRICK_TRANSACTIONS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/engine_facade.h"
#include "hattrick/datagen.h"
#include "storage/catalog.h"

namespace hattrick {

/// The three HATtrick transaction types (Section 5.2.1), modeled after
/// TPC-C's NewOrder / Payment and a read-only order count.
enum class TxnType { kNewOrder, kPayment, kCountOrders };

/// Returns "new_order" etc.
const char* TxnTypeName(TxnType type);

/// Shared mutable workload state: key ranges for parameter generation and
/// the order-key sequence continued from the initial load.
struct WorkloadContext {
  explicit WorkloadContext(const Dataset& dataset)
      : num_customers(dataset.customer.size()),
        num_suppliers(dataset.supplier.size()),
        num_parts(dataset.part.size()),
        initial_max_orderkey(dataset.max_orderkey),
        next_orderkey(dataset.max_orderkey + 1),
        num_freshness_tables(dataset.config.num_freshness_tables) {}

  size_t num_customers;
  size_t num_suppliers;
  size_t num_parts;
  int64_t initial_max_orderkey;
  std::atomic<int64_t> next_orderkey;
  uint32_t num_freshness_tables;
  /// Payments express their counter/balance bumps as commutative delta
  /// writes (BufferDelta) instead of full after-images, letting
  /// concurrent Payments on the same hot supplier commit without
  /// write-write aborts. Off reproduces the legacy read-modify-write
  /// behavior (the ablation's "before" arm).
  bool payment_deltas = true;

  /// Rewinds the order-key sequence (benchmark reset).
  void Reset() { next_orderkey.store(initial_max_orderkey + 1); }
};

/// Resolved table ids and index handles for one engine instance (indexes
/// may be null under the reduced physical schemas; transactions then fall
/// back to scans, which is what makes the no-index configuration of
/// Figure 6b slow).
struct EngineHandles {
  TableId lineorder = 0;
  TableId customer = 0;
  TableId supplier = 0;
  TableId part = 0;
  TableId date = 0;
  TableId history = 0;
  std::vector<TableId> freshness;  // index j-1 => FRESHNESS_j

  IndexInfo* customer_pk = nullptr;
  IndexInfo* customer_name = nullptr;
  IndexInfo* supplier_pk = nullptr;
  IndexInfo* supplier_name = nullptr;
  IndexInfo* part_pk = nullptr;
  IndexInfo* date_pk = nullptr;
  IndexInfo* lineorder_custkey = nullptr;

  static EngineHandles Resolve(const Catalog& catalog,
                               uint32_t num_freshness_tables);
};

/// Fully materialized parameters of one transaction. Parameters are
/// generated up-front (Section 5.2.1's random selections) so that a
/// retried transaction re-runs with identical inputs.
struct TxnParams {
  TxnType type = TxnType::kNewOrder;

  // NewOrder.
  int64_t orderkey = 0;
  std::string customer_name;  // also Payment (60%) and CountOrders
  int64_t orderdate = 0;
  struct OrderLine {
    int64_t partkey;
    std::string supplier_name;
    int64_t quantity;
    int64_t discount;
    int64_t tax;
    std::string shipmode;
    std::string priority;
  };
  std::vector<OrderLine> lines;

  // Payment.
  bool by_custkey = false;  // 40% of payments select by C_CUSTKEY
  int64_t custkey = 0;
  int64_t suppkey = 0;
  int64_t payment_orderkey = 0;
  double amount = 0;
  bool use_deltas = true;  // copied from WorkloadContext::payment_deltas
};

/// Draws the next transaction (48% NewOrder / 48% Payment / 4%
/// CountOrders) with random parameters.
TxnParams GenerateTxnParams(WorkloadContext* ctx, Rng* rng);

/// Builds the transaction body for `params`. `client` is the 1-based
/// T-client id (selects the FRESHNESS_j table); `txn_num` is the
/// client-local sequence number written into FRESHNESS_j.
TxnBody MakeTxnBody(const TxnParams& params, const EngineHandles& handles,
                    uint32_t client, uint64_t txn_num);

}  // namespace hattrick

#endif  // HATTRICK_HATTRICK_TRANSACTIONS_H_
