#ifndef HATTRICK_HATTRICK_HATTRICK_SCHEMA_H_
#define HATTRICK_HATTRICK_HATTRICK_SCHEMA_H_

#include <cstddef>
#include <string>

#include "engine/htap_engine.h"

namespace hattrick {

/// The HATtrick schema (paper Figure 4): the Star-Schema Benchmark
/// entities extended with
///  - CUSTOMER.PAYMENTCNT (payments made per customer),
///  - SUPPLIER.YTD (year-to-date supplier balance),
///  - PART.PRICE (unit price used by new-order),
///  - a HISTORY relation (payment history),
///  - FRESHNESS_j relations (one single-row table per T-client, holding
///    the last transaction number of that client; Section 4.2).
///
/// Column ordinals are exported as constants so transactions and query
/// plans reference columns by name-like identifiers.

namespace lo {  // LINEORDER
inline constexpr size_t kOrderKey = 0;
inline constexpr size_t kLineNumber = 1;
inline constexpr size_t kCustKey = 2;
inline constexpr size_t kPartKey = 3;
inline constexpr size_t kSuppKey = 4;
inline constexpr size_t kOrderDate = 5;   // yyyymmdd int
inline constexpr size_t kOrdPriority = 6;
inline constexpr size_t kShipPriority = 7;
inline constexpr size_t kQuantity = 8;
inline constexpr size_t kExtendedPrice = 9;
inline constexpr size_t kOrdTotalPrice = 10;
inline constexpr size_t kDiscount = 11;
inline constexpr size_t kRevenue = 12;
inline constexpr size_t kSupplyCost = 13;
inline constexpr size_t kTax = 14;
inline constexpr size_t kCommitDate = 15;
inline constexpr size_t kShipMode = 16;
inline constexpr size_t kNumColumns = 17;
}  // namespace lo

namespace cust {  // CUSTOMER
inline constexpr size_t kCustKey = 0;
inline constexpr size_t kName = 1;
inline constexpr size_t kAddress = 2;
inline constexpr size_t kCity = 3;
inline constexpr size_t kNation = 4;
inline constexpr size_t kRegion = 5;
inline constexpr size_t kPhone = 6;
inline constexpr size_t kMktSegment = 7;
inline constexpr size_t kPaymentCnt = 8;  // HATtrick addition
inline constexpr size_t kNumColumns = 9;
}  // namespace cust

namespace supp {  // SUPPLIER
inline constexpr size_t kSuppKey = 0;
inline constexpr size_t kName = 1;
inline constexpr size_t kAddress = 2;
inline constexpr size_t kCity = 3;
inline constexpr size_t kNation = 4;
inline constexpr size_t kRegion = 5;
inline constexpr size_t kPhone = 6;
inline constexpr size_t kYtd = 7;  // HATtrick addition
inline constexpr size_t kNumColumns = 8;
}  // namespace supp

namespace part {  // PART
inline constexpr size_t kPartKey = 0;
inline constexpr size_t kName = 1;
inline constexpr size_t kMfgr = 2;
inline constexpr size_t kCategory = 3;
inline constexpr size_t kBrand1 = 4;
inline constexpr size_t kColor = 5;
inline constexpr size_t kType = 6;
inline constexpr size_t kSize = 7;
inline constexpr size_t kContainer = 8;
inline constexpr size_t kPrice = 9;  // HATtrick addition
inline constexpr size_t kNumColumns = 10;
}  // namespace part

namespace date {  // DATE
inline constexpr size_t kDateKey = 0;  // yyyymmdd int
inline constexpr size_t kDate = 1;
inline constexpr size_t kDayOfWeek = 2;
inline constexpr size_t kMonth = 3;
inline constexpr size_t kYear = 4;
inline constexpr size_t kYearMonthNum = 5;  // yyyymm int
inline constexpr size_t kYearMonth = 6;     // "Dec1997"
inline constexpr size_t kDayNumInWeek = 7;
inline constexpr size_t kDayNumInMonth = 8;
inline constexpr size_t kDayNumInYear = 9;
inline constexpr size_t kMonthNumInYear = 10;
inline constexpr size_t kWeekNumInYear = 11;
inline constexpr size_t kSellingSeason = 12;
inline constexpr size_t kLastDayInMonthFl = 13;
inline constexpr size_t kHolidayFl = 14;
inline constexpr size_t kWeekdayFl = 15;
inline constexpr size_t kNumColumns = 16;
}  // namespace date

namespace hist {  // HISTORY
inline constexpr size_t kOrderKey = 0;
inline constexpr size_t kCustKey = 1;
inline constexpr size_t kAmount = 2;
inline constexpr size_t kNumColumns = 3;
}  // namespace hist

namespace fresh {  // FRESHNESS_j
inline constexpr size_t kTxnNum = 0;
inline constexpr size_t kNumColumns = 1;
}  // namespace fresh

/// Table names.
inline constexpr const char* kLineorder = "LINEORDER";
inline constexpr const char* kCustomer = "CUSTOMER";
inline constexpr const char* kSupplier = "SUPPLIER";
inline constexpr const char* kPart = "PART";
inline constexpr const char* kDate = "DATE";
inline constexpr const char* kHistory = "HISTORY";

/// Name of FRESHNESS_j for T-client j (1-based).
std::string FreshnessTableName(uint32_t client);

/// Physical-schema configurations of the Figure 6b experiment.
enum class PhysicalSchema {
  kNoIndexes,    // no B+-tree indexes at all
  kSemiIndexes,  // indexes that accelerate only the T workload
  kAllIndexes,   // all indexes over T and A predicate attributes
};

/// Returns "none"/"semi"/"all".
const char* PhysicalSchemaName(PhysicalSchema schema);

/// Schemas of the individual tables.
Schema LineorderSchema();
Schema CustomerSchema();
Schema SupplierSchema();
Schema PartSchema();
Schema DateSchema();
Schema HistorySchema();
Schema FreshnessSchema();

/// The full database: tables plus the index set for `physical`.
/// `num_freshness_tables` FRESHNESS_j tables are created (must cover the
/// maximum number of T-clients the benchmark will use).
DatabaseSpec MakeDatabaseSpec(PhysicalSchema physical,
                              uint32_t num_freshness_tables);

}  // namespace hattrick

#endif  // HATTRICK_HATTRICK_HATTRICK_SCHEMA_H_
