#include "hattrick/datagen.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

#include "common/rng.h"

namespace hattrick {

namespace {

constexpr size_t kBaseLineorders = 6000000;  // SSB rows per SF, unscaled

const char* const kMonths[12] = {
    "January", "February", "March",     "April",   "May",      "June",
    "July",    "August",   "September", "October", "November", "December"};
const char* const kMonthAbbrev[12] = {"Jan", "Feb", "Mar", "Apr",
                                      "May", "Jun", "Jul", "Aug",
                                      "Sep", "Oct", "Nov", "Dec"};
const char* const kWeekdays[7] = {"Sunday",   "Monday", "Tuesday",
                                  "Wednesday", "Thursday", "Friday",
                                  "Saturday"};
const char* const kSegments[5] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                  "MACHINERY", "HOUSEHOLD"};
const char* const kPriorities[5] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                    "4-NOT SPECI", "5-LOW"};
const char* const kShipModes[7] = {"REG AIR", "AIR",  "RAIL", "SHIP",
                                   "TRUCK",   "MAIL", "FOB"};
const char* const kColors[16] = {
    "almond", "antique", "aquamarine", "azure", "beige",  "bisque",
    "black",  "blanched", "blue",      "blush", "brown",  "burlywood",
    "chartreuse", "chiffon", "chocolate", "coral"};
const char* const kTypes[10] = {
    "ECONOMY ANODIZED STEEL", "ECONOMY BRUSHED BRASS",
    "LARGE BURNISHED COPPER", "LARGE PLATED NICKEL",
    "MEDIUM POLISHED TIN",    "MEDIUM ANODIZED STEEL",
    "PROMO BRUSHED COPPER",   "PROMO PLATED BRASS",
    "SMALL BURNISHED NICKEL", "STANDARD POLISHED TIN"};
const char* const kContainers[10] = {
    "SM CASE", "SM BOX",  "SM BAG",  "MED CASE", "MED BOX",
    "MED BAG", "LG CASE", "LG BOX",  "LG BAG",   "JUMBO BOX"};

bool IsLeap(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month /*1-12*/) {
  static const int kDays[12] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30,
                                31};
  if (month == 2 && IsLeap(year)) return 29;
  return kDays[month - 1];
}

struct CalendarDay {
  int year;
  int month;         // 1-12
  int day;           // 1-31
  int day_of_week;   // 0=Sunday .. 6=Saturday
  int day_of_year;   // 1-based
};

/// The calendar day `index` days after 1992-01-01 (a Wednesday).
CalendarDay DayAt(size_t index) {
  CalendarDay d{1992, 1, 1, /*day_of_week=*/3, 1};
  size_t remaining = index;
  // Skip whole years.
  while (true) {
    const size_t year_days = IsLeap(d.year) ? 366 : 365;
    if (remaining < year_days) break;
    remaining -= year_days;
    ++d.year;
  }
  d.day_of_year = static_cast<int>(remaining) + 1;
  while (remaining >= static_cast<size_t>(DaysInMonth(d.year, d.month))) {
    remaining -= DaysInMonth(d.year, d.month);
    ++d.month;
  }
  d.day = static_cast<int>(remaining) + 1;
  d.day_of_week = static_cast<int>((3 + index) % 7);
  return d;
}

std::string Phone(Rng* rng) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%02d-%03d-%03d-%04d",
                static_cast<int>(rng->Uniform(10, 34)),
                static_cast<int>(rng->Uniform(100, 999)),
                static_cast<int>(rng->Uniform(100, 999)),
                static_cast<int>(rng->Uniform(1000, 9999)));
  return buf;
}

std::string Address(Rng* rng) {
  static const char kAlpha[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ";
  const int len = static_cast<int>(rng->Uniform(10, 20));
  std::string out;
  out.reserve(len);
  for (int i = 0; i < len; ++i) {
    out.push_back(kAlpha[rng->Uniform(0, sizeof(kAlpha) - 2)]);
  }
  return out;
}

/// SSB city: first 9 characters of the nation (space padded) + digit.
std::string CityOf(const std::string& nation, int digit) {
  std::string prefix = nation.substr(0, 9);
  prefix.resize(9, ' ');
  return prefix + std::to_string(digit);
}

}  // namespace

const char* const kNations[25] = {
    "ALGERIA",    "ARGENTINA",  "BRAZIL",         "CANADA",
    "EGYPT",      "ETHIOPIA",   "FRANCE",         "GERMANY",
    "INDIA",      "INDONESIA",  "IRAN",           "IRAQ",
    "JAPAN",      "JORDAN",     "KENYA",          "MOROCCO",
    "MOZAMBIQUE", "PERU",       "CHINA",          "ROMANIA",
    "SAUDI ARABIA", "VIETNAM",  "RUSSIA",         "UNITED KINGDOM",
    "UNITED STATES"};

const char* const kNationRegions[25] = {
    "AFRICA",      "AMERICA", "AMERICA",     "AMERICA", "MIDDLE EAST",
    "AFRICA",      "EUROPE",  "EUROPE",      "ASIA",    "ASIA",
    "MIDDLE EAST", "MIDDLE EAST", "ASIA",    "MIDDLE EAST", "AFRICA",
    "AFRICA",      "AFRICA",  "AMERICA",     "ASIA",    "EUROPE",
    "MIDDLE EAST", "ASIA",    "EUROPE",      "EUROPE",  "AMERICA"};

int64_t DateKeyAt(size_t index) {
  const CalendarDay d = DayAt(index);
  return static_cast<int64_t>(d.year) * 10000 + d.month * 100 + d.day;
}

size_t DatagenConfig::NumLineorders() const {
  return std::max<size_t>(
      200, static_cast<size_t>(std::llround(
               static_cast<double>(lineorders_per_sf) * scale_factor)));
}

size_t DatagenConfig::NumCustomers() const {
  const double ratio =
      static_cast<double>(lineorders_per_sf) / kBaseLineorders;
  return std::max<size_t>(
      10, static_cast<size_t>(std::llround(30000.0 * scale_factor * ratio)));
}

size_t DatagenConfig::NumSuppliers() const {
  const double ratio =
      static_cast<double>(lineorders_per_sf) / kBaseLineorders;
  return std::max<size_t>(
      2, static_cast<size_t>(std::llround(2000.0 * scale_factor * ratio)));
}

size_t DatagenConfig::NumParts() const {
  const double ratio =
      static_cast<double>(lineorders_per_sf) / kBaseLineorders;
  const double base =
      200000.0 * (1.0 + std::floor(std::log2(std::max(1.0, scale_factor))));
  return std::max<size_t>(
      20, static_cast<size_t>(std::llround(base * scale_factor * ratio)));
}

std::string CustomerName(int64_t custkey) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "Customer#%09lld",
                static_cast<long long>(custkey));
  return buf;
}

std::string SupplierName(int64_t suppkey) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "Supplier#%09lld",
                static_cast<long long>(suppkey));
  return buf;
}

Dataset GenerateDataset(const DatagenConfig& config) {
  Dataset ds;
  ds.config = config;
  Rng rng(config.seed);

  // DATE: fixed 7-year calendar.
  ds.date.reserve(DatagenConfig::NumDates());
  for (size_t i = 0; i < DatagenConfig::NumDates(); ++i) {
    const CalendarDay d = DayAt(i);
    char date_str[32];
    std::snprintf(date_str, sizeof(date_str), "%s %d, %d",
                  kMonths[d.month - 1], d.day, d.year);
    const std::string yearmonth =
        std::string(kMonthAbbrev[d.month - 1]) + std::to_string(d.year);
    const char* season = "Winter";
    if (d.month >= 3 && d.month <= 5) season = "Spring";
    if (d.month >= 6 && d.month <= 8) season = "Summer";
    if (d.month == 9 || d.month == 10) season = "Fall";
    if (d.month >= 11) season = "Christmas";
    ds.date.push_back(Row{
        DateKeyAt(i),
        std::string(date_str),
        std::string(kWeekdays[d.day_of_week]),
        std::string(kMonths[d.month - 1]),
        int64_t{d.year},
        static_cast<int64_t>(d.year) * 100 + d.month,
        yearmonth,
        int64_t{d.day_of_week + 1},
        int64_t{d.day},
        int64_t{d.day_of_year},
        int64_t{d.month},
        int64_t{(d.day_of_year - 1) / 7 + 1},
        std::string(season),
        int64_t{d.day == DaysInMonth(d.year, d.month)},
        int64_t{(d.month == 12 && d.day == 25) ||
                (d.month == 1 && d.day == 1) ||
                (d.month == 7 && d.day == 4)},
        int64_t{d.day_of_week >= 1 && d.day_of_week <= 5},
    });
  }

  // CUSTOMER.
  const size_t num_customers = config.NumCustomers();
  ds.customer.reserve(num_customers);
  for (size_t i = 1; i <= num_customers; ++i) {
    const int nation = static_cast<int>(rng.Uniform(0, 24));
    ds.customer.push_back(Row{
        static_cast<int64_t>(i),
        CustomerName(static_cast<int64_t>(i)),
        Address(&rng),
        CityOf(kNations[nation], static_cast<int>(rng.Uniform(0, 9))),
        std::string(kNations[nation]),
        std::string(kNationRegions[nation]),
        Phone(&rng),
        std::string(kSegments[rng.Uniform(0, 4)]),
        int64_t{0},  // C_PAYMENTCNT
    });
  }

  // SUPPLIER.
  const size_t num_suppliers = config.NumSuppliers();
  ds.supplier.reserve(num_suppliers);
  for (size_t i = 1; i <= num_suppliers; ++i) {
    const int nation = static_cast<int>(rng.Uniform(0, 24));
    ds.supplier.push_back(Row{
        static_cast<int64_t>(i),
        SupplierName(static_cast<int64_t>(i)),
        Address(&rng),
        CityOf(kNations[nation], static_cast<int>(rng.Uniform(0, 9))),
        std::string(kNations[nation]),
        std::string(kNationRegions[nation]),
        Phone(&rng),
        0.0,  // S_YTD
    });
  }

  // PART.
  const size_t num_parts = config.NumParts();
  ds.part.reserve(num_parts);
  for (size_t i = 1; i <= num_parts; ++i) {
    const int mfgr = static_cast<int>(rng.Uniform(1, 5));
    const int category = static_cast<int>(rng.Uniform(1, 5));
    const int brand = static_cast<int>(rng.Uniform(1, 40));
    const std::string mfgr_s = "MFGR#" + std::to_string(mfgr);
    const std::string category_s = mfgr_s + std::to_string(category);
    const std::string brand_s = category_s + std::to_string(brand);
    const double price =
        (90000.0 + static_cast<double>(i % 20001) +
         100.0 * static_cast<double>(i % 1000)) /
        100.0;
    ds.part.push_back(Row{
        static_cast<int64_t>(i),
        std::string(kColors[rng.Uniform(0, 15)]) + " part",
        mfgr_s,
        category_s,
        brand_s,
        std::string(kColors[rng.Uniform(0, 15)]),
        std::string(kTypes[rng.Uniform(0, 9)]),
        rng.Uniform(1, 50),
        std::string(kContainers[rng.Uniform(0, 9)]),
        price,
    });
  }

  // LINEORDER + HISTORY: whole orders of 1-7 lines until the row budget.
  const size_t num_lineorders = config.NumLineorders();
  ds.lineorder.reserve(num_lineorders + 8);
  int64_t orderkey = 0;
  while (ds.lineorder.size() < num_lineorders) {
    ++orderkey;
    const int num_lines = static_cast<int>(rng.Uniform(1, 7));
    const int64_t custkey = rng.Uniform(1, num_customers);
    const int64_t orderdate =
        DateKeyAt(static_cast<size_t>(
            rng.Uniform(0, static_cast<int64_t>(DatagenConfig::NumDates()) -
                               1)));
    const std::string priority = kPriorities[rng.Uniform(0, 4)];
    const size_t first_line = ds.lineorder.size();
    double total = 0;
    for (int line = 1; line <= num_lines; ++line) {
      const int64_t partkey = rng.Uniform(1, num_parts);
      const int64_t suppkey = rng.Uniform(1, num_suppliers);
      const int64_t quantity = rng.Uniform(1, 50);
      const int64_t discount = rng.Uniform(0, 10);
      const int64_t tax = rng.Uniform(0, 8);
      const double price = ds.part[partkey - 1][part::kPrice].AsDouble();
      const double extended = price * static_cast<double>(quantity);
      const double revenue =
          extended * (100.0 - static_cast<double>(discount)) / 100.0;
      total += extended;
      const int64_t commitdate = DateKeyAt(static_cast<size_t>(rng.Uniform(
          0, static_cast<int64_t>(DatagenConfig::NumDates()) - 1)));
      ds.lineorder.push_back(Row{
          orderkey,
          int64_t{line},
          custkey,
          partkey,
          suppkey,
          orderdate,
          priority,
          int64_t{0},
          quantity,
          extended,
          0.0,  // patched below with the order total
          discount,
          revenue,
          0.6 * extended,
          tax,
          commitdate,
          std::string(kShipModes[rng.Uniform(0, 6)]),
      });
    }
    for (size_t i = first_line; i < ds.lineorder.size(); ++i) {
      ds.lineorder[i][lo::kOrdTotalPrice] = Value(total);
    }
    ds.history.push_back(Row{orderkey, custkey, total});
  }
  ds.max_orderkey = orderkey;
  return ds;
}

Status LoadDataset(const Dataset& dataset, PhysicalSchema physical,
                   HtapEngine* engine) {
  const DatabaseSpec spec =
      MakeDatabaseSpec(physical, dataset.config.num_freshness_tables);
  HATTRICK_RETURN_IF_ERROR(engine->Create(spec));
  HATTRICK_RETURN_IF_ERROR(engine->BulkLoad(kLineorder, dataset.lineorder));
  HATTRICK_RETURN_IF_ERROR(engine->BulkLoad(kCustomer, dataset.customer));
  HATTRICK_RETURN_IF_ERROR(engine->BulkLoad(kSupplier, dataset.supplier));
  HATTRICK_RETURN_IF_ERROR(engine->BulkLoad(kPart, dataset.part));
  HATTRICK_RETURN_IF_ERROR(engine->BulkLoad(kDate, dataset.date));
  HATTRICK_RETURN_IF_ERROR(engine->BulkLoad(kHistory, dataset.history));
  const std::vector<Row> zero_row = {Row{int64_t{0}}};
  for (uint32_t j = 1; j <= dataset.config.num_freshness_tables; ++j) {
    HATTRICK_RETURN_IF_ERROR(
        engine->BulkLoad(FreshnessTableName(j), zero_row));
  }
  return engine->FinishLoad();
}

}  // namespace hattrick
