#ifndef HATTRICK_HATTRICK_FRESHNESS_H_
#define HATTRICK_HATTRICK_FRESHNESS_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/clock.h"

namespace hattrick {

/// Client-side freshness measurement (Section 4).
///
/// Every T-client records the *client-observed* commit time of each of
/// its transactions (the instant the commit result returns to the
/// client, resolving the paper's "no global clock" challenge). Every
/// analytical query returns the last transaction number it observed for
/// each T-client (the FRESHNESS_j read-back, resolving the "hard to
/// identify first-not-seen transaction" challenge). The freshness score
/// of a query is then
///
///   f = max(0, ts_start - tc(first transaction not seen)),
///
/// where the first-not-seen transaction is the earliest-committing
/// transaction, across all clients, with a number greater than the
/// observed one.
class FreshnessTracker {
 public:
  /// Prepares per-client storage for clients 1..n.
  void SetNumClients(uint32_t n) {
    commit_times_.assign(n, {});
  }

  /// Records the commit of transaction `txn_num` (1-based, sequential per
  /// client) of `client` (1-based) at client-observed time `t`.
  /// Transactions that ultimately failed are never recorded; the gap is
  /// skipped by Score.
  void RecordCommit(uint32_t client, uint64_t txn_num, TimePoint t) {
    auto& times = commit_times_[client - 1];
    if (times.size() < txn_num) {
      times.resize(txn_num, kNever);
    }
    times[txn_num - 1] = t;
  }

  /// A query's raw observation, scored after the run completes (by then
  /// all relevant commit times are known).
  struct Observation {
    TimePoint query_start = 0;
    std::vector<int64_t> seen;  // last TXNNUM per client; index j-1
  };

  /// Computes the freshness score of `obs` in seconds.
  double Score(const Observation& obs) const {
    double score = 0;
    const size_t n = std::min(obs.seen.size(), commit_times_.size());
    for (size_t j = 0; j < n; ++j) {
      const auto& times = commit_times_[j];
      // First committed transaction with number > seen[j]. A negative
      // observation (a malformed read-back) would wrap hugely if cast
      // straight to size_t; treat it as "saw nothing".
      const size_t first = obs.seen[j] < 0
                               ? 0
                               : static_cast<size_t>(obs.seen[j]);
      for (size_t i = first; i < times.size(); ++i) {
        if (times[i] == kNever) continue;  // failed txn: no commit
        score = std::max(score, obs.query_start - times[i]);
        break;
      }
    }
    return std::max(0.0, score);
  }

  void Reset() {
    for (auto& times : commit_times_) times.clear();
  }

 private:
  static constexpr TimePoint kNever = -1.0;

  std::vector<std::vector<TimePoint>> commit_times_;
};

}  // namespace hattrick

#endif  // HATTRICK_HATTRICK_FRESHNESS_H_
