#include "hattrick/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace hattrick {

void PrintGridCsv(const std::string& label, const GridGraph& grid) {
  std::printf("# %s fixed-T lines (t_clients,a_clients,tps,qps)\n",
              label.c_str());
  for (const GridLine& line : grid.fixed_t_lines) {
    for (const OperatingPoint& p : line.points) {
      std::printf("%d,%d,%.1f,%.2f\n", p.t_clients, p.a_clients, p.tps,
                  p.qps);
    }
    std::printf("\n");
  }
  std::printf("# %s fixed-A lines (t_clients,a_clients,tps,qps)\n",
              label.c_str());
  for (const GridLine& line : grid.fixed_a_lines) {
    for (const OperatingPoint& p : line.points) {
      std::printf("%d,%d,%.1f,%.2f\n", p.t_clients, p.a_clients, p.tps,
                  p.qps);
    }
    std::printf("\n");
  }
  std::printf("# %s frontier (tps,qps)\n", label.c_str());
  for (const OperatingPoint& p : grid.frontier) {
    std::printf("%.1f,%.2f\n", p.tps, p.qps);
  }
  std::printf("\n");
}

void PrintFrontierSummary(const std::string& label, const GridGraph& grid,
                          bool per_point_metrics) {
  std::printf("== %s ==\n", label.c_str());
  std::printf("  tau_max=%d clients, alpha_max=%d clients\n", grid.tau_max,
              grid.alpha_max);
  std::printf("  XT=%.1f tps, XA=%.2f qps\n", grid.xt, grid.xa);
  std::printf("  frontier coverage of bounding box: %.3f\n",
              FrontierCoverage(grid));
  std::printf("  mean deviation from proportional line: %+.3f\n",
              ProportionalDeviation(grid));
  std::printf("  pattern: %s\n",
              FrontierPatternName(ClassifyFrontier(grid)));
  if (per_point_metrics) {
    std::printf("  frontier points (t,a,tps,qps | lock_wait_s,"
                "merged_rows,replay_records,aborts | txn p50/p95/p99 ms | "
                "query p50/p95/p99 ms):\n");
    for (const OperatingPoint& p : grid.frontier) {
      std::printf("    %d,%d,%.1f,%.2f | %.4f,%llu,%llu,%llu | "
                  "%.2f/%.2f/%.2f | %.1f/%.1f/%.1f\n",
                  p.t_clients, p.a_clients, p.tps, p.qps, p.lock_wait_s,
                  static_cast<unsigned long long>(p.merged_rows),
                  static_cast<unsigned long long>(p.replay_records),
                  static_cast<unsigned long long>(p.aborts),
                  p.txn_latency.p50 * 1e3, p.txn_latency.p95 * 1e3,
                  p.txn_latency.p99 * 1e3, p.query_latency.p50 * 1e3,
                  p.query_latency.p95 * 1e3, p.query_latency.p99 * 1e3);
    }
  }
}

void PlotFrontiers(const std::vector<std::string>& labels,
                   const std::vector<const GridGraph*>& grids) {
  constexpr int kWidth = 72;
  constexpr int kHeight = 24;
  double max_x = 0;
  double max_y = 0;
  for (const GridGraph* grid : grids) {
    max_x = std::max(max_x, grid->xt);
    max_y = std::max(max_y, grid->xa);
  }
  if (max_x <= 0 || max_y <= 0) return;

  std::vector<std::string> canvas(kHeight, std::string(kWidth, ' '));
  static const char kGlyphs[] = "*o+x#@%&";
  // Proportional line of the first grid as reference.
  if (!grids.empty()) {
    const GridGraph* g = grids[0];
    for (int col = 0; col < kWidth; ++col) {
      const double x = max_x * col / (kWidth - 1);
      if (x > g->xt) continue;
      const double y = g->xa * (1.0 - x / g->xt);
      const int row =
          kHeight - 1 - static_cast<int>(std::lround(y / max_y *
                                                     (kHeight - 1)));
      if (row >= 0 && row < kHeight && canvas[row][col] == ' ') {
        canvas[row][col] = '.';
      }
    }
  }
  for (size_t s = 0; s < grids.size(); ++s) {
    const char glyph = kGlyphs[s % (sizeof(kGlyphs) - 1)];
    for (const OperatingPoint& p : grids[s]->frontier) {
      const int col =
          static_cast<int>(std::lround(p.tps / max_x * (kWidth - 1)));
      const int row = kHeight - 1 -
                      static_cast<int>(std::lround(p.qps / max_y *
                                                   (kHeight - 1)));
      if (row >= 0 && row < kHeight && col >= 0 && col < kWidth) {
        canvas[row][col] = glyph;
      }
    }
  }
  std::printf("  qps (max %.2f)\n", max_y);
  for (const std::string& line : canvas) {
    std::printf("  |%s\n", line.c_str());
  }
  std::printf("  +%s tps (max %.1f)\n", std::string(kWidth, '-').c_str(),
              max_x);
  for (size_t s = 0; s < labels.size() && s < grids.size(); ++s) {
    std::printf("    '%c' = %s\n", kGlyphs[s % (sizeof(kGlyphs) - 1)],
                labels[s].c_str());
  }
}

std::vector<RatioFreshness> MeasureRatioFreshness(const PointRunner& runner,
                                                  int tau_max,
                                                  int alpha_max) {
  auto scaled = [](int max, double fraction) {
    return std::max(1, static_cast<int>(std::lround(max * fraction)));
  };
  const struct {
    const char* name;
    double t_fraction;
    double a_fraction;
  } kRatios[] = {{"20:80", 0.2, 0.8}, {"50:50", 0.5, 0.5}, {"80:20", 0.8,
                                                            0.2}};
  std::vector<RatioFreshness> rows;
  for (const auto& ratio : kRatios) {
    RatioFreshness row;
    row.ratio = ratio.name;
    row.t_clients = scaled(tau_max, ratio.t_fraction);
    row.a_clients = scaled(alpha_max, ratio.a_fraction);
    const OperatingPoint p = runner(row.t_clients, row.a_clients);
    row.p99 = p.freshness_p99;
    row.mean = p.freshness_mean;
    rows.push_back(row);
  }
  return rows;
}

void PrintRatioFreshness(const std::string& label,
                         const std::vector<RatioFreshness>& rows) {
  std::printf("# %s freshness (T:A ratio, t_clients, a_clients, p99_s, "
              "mean_s)\n",
              label.c_str());
  for (const RatioFreshness& row : rows) {
    std::printf("%s,%d,%d,%.4f,%.4f\n", row.ratio.c_str(), row.t_clients,
                row.a_clients, row.p99, row.mean);
  }
  std::printf("\n");
}

}  // namespace hattrick
