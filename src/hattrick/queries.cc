#include "hattrick/queries.h"

#include <cassert>
#include <functional>
#include <memory>

#include "exec/parallel.h"
#include "hattrick/hattrick_schema.h"

namespace hattrick {

namespace {

// ---------------------------------------------------------------------------
// Plan-building helpers. Column positions after MakeHashJoin are
// probe-columns followed by build-columns; each plan documents its layout.
// ---------------------------------------------------------------------------

/// One worker's share of the fact-table scan in a morsel-parallel plan.
/// When non-null, the builders restrict the LINEORDER scan to this
/// worker's morsels and end the shard in a partial aggregate (merged by
/// MakeGatherMerge); dimension scans are repeated per shard — they are
/// tiny next to the fact table, and repeating them keeps shards
/// independent. Null builds the ordinary serial plan.
struct FactShard {
  std::shared_ptr<MorselSet> morsels;
  uint32_t worker = 0;
};

void ApplyShard(const FactShard* shard, ScanSpec* spec) {
  if (shard == nullptr) return;
  spec->morsels = shard->morsels;
  spec->worker = shard->worker;
}

OperatorPtr MakeFinalOrPartialAggregate(const FactShard* shard,
                                        OperatorPtr child,
                                        std::vector<ExprPtr> group_by,
                                        std::vector<AggSpec> aggs) {
  if (shard != nullptr) {
    return MakePartialHashAggregate(std::move(child), std::move(group_by),
                                    std::move(aggs));
  }
  return MakeHashAggregate(std::move(child), std::move(group_by),
                           std::move(aggs));
}

/// SSB Q1 flight: revenue = SUM(LO_EXTENDEDPRICE * LO_DISCOUNT) over a
/// one-table scan. The D_YEAR / D_YEARMONTHNUM / D_WEEKNUMINYEAR filters
/// are rewritten to LO_ORDERDATE ranges (datekey encodes the date), the
/// standard SSB Q1 rewrite that eliminates the DATE join; the orderdate
/// index is hinted for the "all indexes" physical schema.
OperatorPtr BuildQ1(const DataSource& source, const FactShard* shard,
                    int64_t date_lo, int64_t date_hi, int64_t disc_lo,
                    int64_t disc_hi, int64_t qty_lo, int64_t qty_hi) {
  ScanSpec spec;
  spec.table = kLineorder;
  spec.projection = {lo::kExtendedPrice, lo::kDiscount};
  spec.ranges = {
      {lo::kOrderDate, static_cast<double>(date_lo),
       static_cast<double>(date_hi)},
      {lo::kDiscount, static_cast<double>(disc_lo),
       static_cast<double>(disc_hi)},
      {lo::kQuantity, static_cast<double>(qty_lo),
       static_cast<double>(qty_hi)},
  };
  spec.index_hint = "lineorder_orderdate";
  ApplyShard(shard, &spec);
  OperatorPtr scan = source.Scan(spec);
  // Layout: 0=extendedprice, 1=discount.
  std::vector<AggSpec> aggs;
  aggs.push_back(AggSpec{AggSpec::Kind::kSum, Mul(Col(0), Col(1))});
  return MakeFinalOrPartialAggregate(shard, std::move(scan), {},
                                     std::move(aggs));
}

/// SSB Q2 flight: SUM(LO_REVENUE) grouped by D_YEAR, P_BRAND1, with a
/// part filter (category, brand, or brand range) and a supplier region
/// filter. Join order: part (most selective) -> supplier -> date.
OperatorPtr BuildQ2(const DataSource& source, const FactShard* shard,
                    StrIn part_filter, const std::string& supp_region) {
  ScanSpec lo_spec;
  lo_spec.table = kLineorder;
  lo_spec.projection = {lo::kPartKey, lo::kSuppKey, lo::kOrderDate,
                        lo::kRevenue};
  ApplyShard(shard, &lo_spec);
  OperatorPtr plan = source.Scan(lo_spec);
  // Layout: 0=partkey 1=suppkey 2=orderdate 3=revenue.

  ScanSpec part_spec;
  part_spec.table = kPart;
  part_spec.projection = {part::kPartKey, part::kBrand1};
  part_spec.str_in = {std::move(part_filter)};
  plan = MakeHashJoin(std::move(plan), /*probe_key=*/0, source.Scan(part_spec),
                      /*build_key=*/0);
  // Layout: +4=p_partkey 5=p_brand1.

  ScanSpec supp_spec;
  supp_spec.table = kSupplier;
  supp_spec.projection = {supp::kSuppKey};
  supp_spec.str_in = {{supp::kRegion, {supp_region}}};
  plan = MakeHashJoin(std::move(plan), /*probe_key=*/1, source.Scan(supp_spec),
                      /*build_key=*/0);
  // Layout: +6=s_suppkey.

  ScanSpec date_spec;
  date_spec.table = kDate;
  date_spec.projection = {date::kDateKey, date::kYear};
  plan = MakeHashJoin(std::move(plan), /*probe_key=*/2, source.Scan(date_spec),
                      /*build_key=*/0);
  // Layout: +7=d_datekey 8=d_year.

  std::vector<AggSpec> aggs;
  aggs.push_back(AggSpec{AggSpec::Kind::kSum, Col(3)});
  return MakeFinalOrPartialAggregate(shard, std::move(plan),
                                     {Col(8), Col(5)}, std::move(aggs));
}

/// SSB Q3 flight: SUM(LO_REVENUE) grouped by customer locale, supplier
/// locale and D_YEAR, with locale filters and a date range.
/// `c_col`/`s_col` select the locale attribute (nation or city).
OperatorPtr BuildQ3(const DataSource& source, const FactShard* shard,
                    size_t c_col, std::vector<std::string> c_values,
                    size_t s_col, std::vector<std::string> s_values,
                    int64_t date_lo, int64_t date_hi) {
  ScanSpec lo_spec;
  lo_spec.table = kLineorder;
  lo_spec.projection = {lo::kCustKey, lo::kSuppKey, lo::kOrderDate,
                        lo::kRevenue};
  lo_spec.ranges = {{lo::kOrderDate, static_cast<double>(date_lo),
                     static_cast<double>(date_hi)}};
  ApplyShard(shard, &lo_spec);
  OperatorPtr plan = source.Scan(lo_spec);
  // Layout: 0=custkey 1=suppkey 2=orderdate 3=revenue.

  ScanSpec cust_spec;
  cust_spec.table = kCustomer;
  cust_spec.projection = {cust::kCustKey, c_col};
  cust_spec.str_in = {{c_col, std::move(c_values)}};
  plan = MakeHashJoin(std::move(plan), /*probe_key=*/0, source.Scan(cust_spec),
                      /*build_key=*/0);
  // Layout: +4=c_custkey 5=c_locale.

  ScanSpec supp_spec;
  supp_spec.table = kSupplier;
  supp_spec.projection = {supp::kSuppKey, s_col};
  supp_spec.str_in = {{s_col, std::move(s_values)}};
  plan = MakeHashJoin(std::move(plan), /*probe_key=*/1, source.Scan(supp_spec),
                      /*build_key=*/0);
  // Layout: +6=s_suppkey 7=s_locale.

  ScanSpec date_spec;
  date_spec.table = kDate;
  date_spec.projection = {date::kDateKey, date::kYear};
  plan = MakeHashJoin(std::move(plan), /*probe_key=*/2, source.Scan(date_spec),
                      /*build_key=*/0);
  // Layout: +8=d_datekey 9=d_year.

  std::vector<AggSpec> aggs;
  aggs.push_back(AggSpec{AggSpec::Kind::kSum, Col(3)});
  return MakeFinalOrPartialAggregate(shard, std::move(plan),
                                     {Col(5), Col(7), Col(9)},
                                     std::move(aggs));
}

/// SSB Q4 flight: profit = SUM(LO_REVENUE - LO_SUPPLYCOST) with customer,
/// supplier and part filters; group-by columns are picked per query from
/// the post-join layout.
struct Q4Filters {
  std::vector<std::string> c_region;
  size_t s_col = supp::kRegion;
  std::vector<std::string> s_values;
  size_t p_col = part::kMfgr;
  std::vector<std::string> p_values;
  int64_t date_lo = 19920101;
  int64_t date_hi = 19981231;
};

/// Post-join layout for Q4 plans:
/// 0=custkey 1=suppkey 2=partkey 3=orderdate 4=revenue 5=supplycost
/// 6=c_custkey 7=c_nation  8=s_suppkey 9=s_city 10=s_nation
/// 11=p_partkey 12=p_category 13=p_brand1  14=d_datekey 15=d_year
OperatorPtr BuildQ4(const DataSource& source, const FactShard* shard,
                    const Q4Filters& f, std::vector<ExprPtr> group_by) {
  ScanSpec lo_spec;
  lo_spec.table = kLineorder;
  lo_spec.projection = {lo::kCustKey, lo::kSuppKey,  lo::kPartKey,
                        lo::kOrderDate, lo::kRevenue, lo::kSupplyCost};
  lo_spec.ranges = {{lo::kOrderDate, static_cast<double>(f.date_lo),
                     static_cast<double>(f.date_hi)}};
  ApplyShard(shard, &lo_spec);
  OperatorPtr plan = source.Scan(lo_spec);

  ScanSpec cust_spec;
  cust_spec.table = kCustomer;
  cust_spec.projection = {cust::kCustKey, cust::kNation};
  cust_spec.str_in = {{cust::kRegion, f.c_region}};
  plan = MakeHashJoin(std::move(plan), /*probe_key=*/0, source.Scan(cust_spec),
                      /*build_key=*/0);

  ScanSpec supp_spec;
  supp_spec.table = kSupplier;
  supp_spec.projection = {supp::kSuppKey, supp::kCity, supp::kNation};
  supp_spec.str_in = {{f.s_col, f.s_values}};
  plan = MakeHashJoin(std::move(plan), /*probe_key=*/1, source.Scan(supp_spec),
                      /*build_key=*/0);

  ScanSpec part_spec;
  part_spec.table = kPart;
  part_spec.projection = {part::kPartKey, part::kCategory, part::kBrand1};
  part_spec.str_in = {{f.p_col, f.p_values}};
  plan = MakeHashJoin(std::move(plan), /*probe_key=*/2, source.Scan(part_spec),
                      /*build_key=*/0);

  ScanSpec date_spec;
  date_spec.table = kDate;
  date_spec.projection = {date::kDateKey, date::kYear};
  plan = MakeHashJoin(std::move(plan), /*probe_key=*/3, source.Scan(date_spec),
                      /*build_key=*/0);

  std::vector<AggSpec> aggs;
  aggs.push_back(AggSpec{AggSpec::Kind::kSum, Sub(Col(4), Col(5))});
  return MakeFinalOrPartialAggregate(shard, std::move(plan),
                                     std::move(group_by), std::move(aggs));
}

std::vector<std::string> Brands(int mfgr, int category, int from, int to) {
  std::vector<std::string> out;
  for (int b = from; b <= to; ++b) {
    out.push_back("MFGR#" + std::to_string(mfgr) + std::to_string(category) +
                  std::to_string(b));
  }
  return out;
}

/// Builds query `query_id` as one shard of a parallel plan (or the serial
/// plan when `shard` is null).
OperatorPtr BuildShardPlan(int query_id, const DataSource& source,
                           const FactShard* shard) {
  switch (query_id) {
    // --- Q1 flight ---
    case 0:  // Q1.1: d_year=1993, discount 1-3, quantity < 25
      return BuildQ1(source, shard, 19930101, 19931231, 1, 3, 1, 24);
    case 1:  // Q1.2: d_yearmonthnum=199401, discount 4-6, quantity 26-35
      return BuildQ1(source, shard, 19940101, 19940131, 4, 6, 26, 35);
    case 2:  // Q1.3: d_weeknuminyear=6, d_year=1994 (Feb 5-11), disc 5-7
      return BuildQ1(source, shard, 19940205, 19940211, 5, 7, 26, 35);
    // --- Q2 flight ---
    case 3:  // Q2.1: p_category='MFGR#12', s_region='AMERICA'
      return BuildQ2(source, shard, {part::kCategory, {"MFGR#12"}},
                     "AMERICA");
    case 4:  // Q2.2: p_brand1 in MFGR#2221..MFGR#2228, s_region='ASIA'
      return BuildQ2(source, shard, {part::kBrand1, Brands(2, 2, 21, 28)},
                     "ASIA");
    case 5:  // Q2.3: p_brand1='MFGR#2239', s_region='EUROPE'
      return BuildQ2(source, shard, {part::kBrand1, {"MFGR#2239"}},
                     "EUROPE");
    // --- Q3 flight ---
    case 6:  // Q3.1: c_region/s_region ASIA, 1992-1997, by nation
      return BuildQ3(source, shard, cust::kRegion, {"ASIA"}, supp::kRegion,
                     {"ASIA"}, 19920101, 19971231);
    case 7:  // Q3.2: nation UNITED STATES, by city
      return BuildQ3(source, shard, cust::kNation, {"UNITED STATES"},
                     supp::kNation, {"UNITED STATES"}, 19920101, 19971231);
    case 8:  // Q3.3: cities UNITED KI1/UNITED KI5
      return BuildQ3(source, shard, cust::kCity,
                     {"UNITED KI1", "UNITED KI5"}, supp::kCity,
                     {"UNITED KI1", "UNITED KI5"}, 19920101, 19971231);
    case 9:  // Q3.4: same cities, d_yearmonth='Dec1997'
      return BuildQ3(source, shard, cust::kCity,
                     {"UNITED KI1", "UNITED KI5"}, supp::kCity,
                     {"UNITED KI1", "UNITED KI5"}, 19971201, 19971231);
    // --- Q4 flight ---
    case 10: {  // Q4.1: regions AMERICA, mfgr 1-2, by d_year, c_nation
      Q4Filters f;
      f.c_region = {"AMERICA"};
      f.s_col = supp::kRegion;
      f.s_values = {"AMERICA"};
      f.p_col = part::kMfgr;
      f.p_values = {"MFGR#1", "MFGR#2"};
      return BuildQ4(source, shard, f, {Col(15), Col(7)});
    }
    case 11: {  // Q4.2: + years 1997-1998, by d_year, s_nation, p_category
      Q4Filters f;
      f.c_region = {"AMERICA"};
      f.s_col = supp::kRegion;
      f.s_values = {"AMERICA"};
      f.p_col = part::kMfgr;
      f.p_values = {"MFGR#1", "MFGR#2"};
      f.date_lo = 19970101;
      f.date_hi = 19981231;
      return BuildQ4(source, shard, f, {Col(15), Col(10), Col(12)});
    }
    case 12: {  // Q4.3: s_nation='UNITED STATES', p_category='MFGR#14'
      Q4Filters f;
      f.c_region = {"AMERICA"};
      f.s_col = supp::kNation;
      f.s_values = {"UNITED STATES"};
      f.p_col = part::kCategory;
      f.p_values = {"MFGR#14"};
      f.date_lo = 19970101;
      f.date_hi = 19981231;
      return BuildQ4(source, shard, f, {Col(15), Col(9), Col(13)});
    }
    default:
      assert(false && "bad query id");
      return nullptr;
  }
}

/// Number of group-by columns in each query's result (the merge operator
/// needs the key width; every SSB aggregate is a single SUM).
size_t QueryGroupColumns(int query_id) {
  switch (query_id) {
    case 0:
    case 1:
    case 2:
      return 0;  // Q1 flight: global revenue
    case 3:
    case 4:
    case 5:
      return 2;  // Q2 flight: d_year, p_brand1
    case 10:
      return 2;  // Q4.1: d_year, c_nation
    default:
      return 3;  // Q3 flight and Q4.2/4.3
  }
}

/// Scatter/gather over a horizontally partitioned source (the sharded
/// engine): one single-worker subplan per shard view — the view's whole
/// fact extent is its morsel set, so each subplan scans exactly its
/// shard's fact partition — merged by the same gather-merge exchange as
/// the morsel-parallel plans. Partial aggregation per shard keeps the
/// merge semantics identical to the intra-node parallel path, and the
/// fixed-point SUM accumulation makes the merged result bit-identical
/// to an unsharded scan regardless of the partitioning.
OperatorPtr BuildScatterGatherPlan(
    int query_id, const std::vector<const DataSource*>& views) {
  std::vector<OperatorPtr> shards;
  shards.reserve(views.size());
  for (const DataSource* view : views) {
    const size_t extent = view->ScanExtent(kLineorder);
    auto morsels = std::make_shared<MorselSet>(
        extent, /*num_workers=*/1, /*dynamic=*/false,
        MorselSet::PickMorselRows(extent, 1));
    FactShard shard{morsels, 0};
    shards.push_back(BuildShardPlan(query_id, *view, &shard));
  }
  return MakeGatherMerge(std::move(shards), QueryGroupColumns(query_id),
                         {AggSpec::Kind::kSum});
}

}  // namespace

const char* QueryName(int query_id) {
  static const char* const kNames[kNumQueries] = {
      "Q1.1", "Q1.2", "Q1.3", "Q2.1", "Q2.2", "Q2.3", "Q3.1",
      "Q3.2", "Q3.3", "Q3.4", "Q4.1", "Q4.2", "Q4.3"};
  assert(query_id >= 0 && query_id < kNumQueries);
  return kNames[query_id];
}

OperatorPtr BuildQueryPlan(int query_id, const DataSource& source) {
  return BuildShardPlan(query_id, source, /*shard=*/nullptr);
}

OperatorPtr BuildParallelQueryPlan(int query_id, const DataSource& source,
                                   int dop, bool dynamic_morsels) {
  const size_t extent = source.ScanExtent(kLineorder);
  if (dop <= 1 || extent == 0) return BuildQueryPlan(query_id, source);

  auto morsels = std::make_shared<MorselSet>(
      extent, static_cast<uint32_t>(dop), dynamic_morsels,
      MorselSet::PickMorselRows(extent, static_cast<uint32_t>(dop)));
  std::vector<OperatorPtr> shards;
  shards.reserve(static_cast<size_t>(dop));
  for (int w = 0; w < dop; ++w) {
    FactShard shard{morsels, static_cast<uint32_t>(w)};
    shards.push_back(BuildShardPlan(query_id, source, &shard));
  }
  return MakeGatherMerge(std::move(shards), QueryGroupColumns(query_id),
                         {AggSpec::Kind::kSum});
}

QueryResult RunQuery(int query_id, const DataSource& source,
                     uint32_t num_freshness_tables, ExecContext* ctx) {
  QueryResult result;
  result.query_id = query_id;
  if (ctx->profile != nullptr) ctx->profile->set_label(QueryName(query_id));

  // A horizontally partitioned source always plans scatter/gather over
  // its per-shard views: cross-shard parallelism replaces intra-node dop
  // (each shard subplan runs single-worker on its own exchange thread).
  const std::vector<const DataSource*> views = source.ShardViews();
  OperatorPtr plan =
      views.size() > 1
          ? BuildScatterGatherPlan(query_id, views)
          : (ctx->dop > 1 ? BuildParallelQueryPlan(query_id, source, ctx->dop,
                                                   ctx->dynamic_morsels)
                          : BuildQueryPlan(query_id, source));
  plan->Open(ctx);
  Row row;
  const std::hash<std::string> hasher;
  const auto fold = [&](const Row& r) {
    ++result.rows;
    for (const Value& v : r) {
      switch (v.type()) {
        case DataType::kInt64:
          result.checksum += static_cast<double>(v.AsInt());
          break;
        case DataType::kDouble:
          result.checksum += v.AsDouble();
          break;
        case DataType::kString:
          result.checksum +=
              static_cast<double>(hasher(v.AsString()) % 1000003);
          break;
      }
    }
  };
  if (ctx->vectorized) {
    // Batch drive: active rows arrive in row-path order, so the checksum
    // fold visits identical cells in identical order in both modes.
    Batch b;
    while (plan->NextBatch(ctx, &b)) {
      const size_t n = b.ActiveRows();
      for (size_t k = 0; k < n; ++k) {
        b.MaterializeRow(b.ActiveIndex(k), &row);
        fold(row);
      }
    }
  } else {
    while (plan->Next(ctx, &row)) fold(row);
  }

  // FRESHNESS_j read-back (Section 4.2). The tables hold exactly one row,
  // so pulling one row (or one batch) drains — and meters — the whole
  // scan in either mode. The read-back scans are bookkeeping, not part of
  // the query plan, so they stay out of the EXPLAIN ANALYZE profile (which
  // then has exactly one root: the plan's).
  obs::PlanProfile* saved_profile = ctx->profile;
  ctx->profile = nullptr;
  result.freshness.reserve(num_freshness_tables);
  for (uint32_t j = 1; j <= num_freshness_tables; ++j) {
    ScanSpec spec;
    spec.table = FreshnessTableName(j);
    spec.projection = {fresh::kTxnNum};
    OperatorPtr scan = source.Scan(spec);
    scan->Open(ctx);
    int64_t txn_num = 0;
    if (ctx->vectorized) {
      Batch b;
      if (scan->NextBatch(ctx, &b) && b.ActiveRows() > 0) {
        txn_num = b.cols[0].GetValue(b.ActiveIndex(0)).AsInt();
      }
    } else if (scan->Next(ctx, &row)) {
      txn_num = row[0].AsInt();
    }
    result.freshness.push_back(txn_num);
  }
  ctx->profile = saved_profile;
  return result;
}

}  // namespace hattrick
