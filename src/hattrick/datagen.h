#ifndef HATTRICK_HATTRICK_DATAGEN_H_
#define HATTRICK_HATTRICK_DATAGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "hattrick/hattrick_schema.h"

namespace hattrick {

/// Data-generation parameters.
///
/// The paper populates SSB at SF1/SF10/SF100 (6M/60M/600M lineorders,
/// 0.57-59 GB). This reproduction keeps the SSB *ratios* but scales the
/// row budget down (DESIGN.md substitution table): `lineorders_per_sf`
/// defaults to 6000 (1000x smaller). The scale-factor *effects* the paper
/// reports are ratio effects — contention on few hot dimension rows at
/// small SF, scan-size and index-depth growth at large SF — and survive
/// uniform scaling.
struct DatagenConfig {
  double scale_factor = 1.0;
  size_t lineorders_per_sf = 6000;
  uint64_t seed = 42;
  /// FRESHNESS_j tables created (>= maximum T-clients used).
  uint32_t num_freshness_tables = 64;

  /// SSB cardinalities under this config.
  size_t NumLineorders() const;
  size_t NumCustomers() const;
  size_t NumSuppliers() const;
  size_t NumParts() const;
  static size_t NumDates() { return 2556; }  // 7 years, 1992-01-01..1998-12-31
};

/// A fully generated initial database image.
struct Dataset {
  DatagenConfig config;
  std::vector<Row> lineorder;
  std::vector<Row> customer;
  std::vector<Row> supplier;
  std::vector<Row> part;
  std::vector<Row> date;
  std::vector<Row> history;
  int64_t max_orderkey = 0;  // new-order transactions continue from here
};

/// Generates the initial HATtrick database (deterministic in the seed).
Dataset GenerateDataset(const DatagenConfig& config);

/// Creates the schema in `engine`, loads `dataset`, and finalizes
/// (engine->Create + BulkLoad of every table + FinishLoad).
Status LoadDataset(const Dataset& dataset, PhysicalSchema physical,
                   HtapEngine* engine);

/// SSB name helpers (also used by transaction parameter generation).
std::string CustomerName(int64_t custkey);
std::string SupplierName(int64_t suppkey);

/// The 25 TPC-H nations and their regions.
extern const char* const kNations[25];
extern const char* const kNationRegions[25];

/// yyyymmdd for the `index`-th day of the SSB calendar (0-based,
/// 1992-01-01 = index 0).
int64_t DateKeyAt(size_t index);

}  // namespace hattrick

#endif  // HATTRICK_HATTRICK_DATAGEN_H_
