#include "hattrick/driver.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cassert>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "sim/core_pool.h"
#include "sim/lock_model.h"
#include "sim/simulation.h"
#include "sim/wait_queue.h"

namespace hattrick {

SimSetup SharedSimSetup() {
  SimSetup setup;
  setup.t_cores = 8;
  setup.separate_pools = false;
  setup.lock_hold_fraction = 1.0;  // pessimistic row locks held to commit
  return setup;
}

SimSetup IsolatedSimSetup() {
  SimSetup setup;
  setup.t_cores = 8;
  setup.a_cores = 8;
  setup.separate_pools = true;  // primary node + standby node
  setup.lock_hold_fraction = 1.0;
  setup.has_maintenance = true;  // standby WAL replay
  // Single-threaded replay with fsync/page costs: replay keeps up at
  // A-heavy mixes but falls behind as the T rate approaches the
  // primary's maximum, which is what produces the paper's non-zero
  // freshness scores in ON mode (Section 6.3).
  setup.cost.replay_multiplier = 1.3;
  return setup;
}

SimSetup HybridSimSetup() {
  SimSetup setup;
  setup.t_cores = 8;
  setup.separate_pools = false;  // one machine, two data copies
  // Optimistic engines synchronize only during the validation window
  // (Section 6.4), not for the full transaction lifetime.
  setup.lock_hold_fraction = 0.25;
  // Dual-copy commit bookkeeping makes the transaction path somewhat
  // heavier than a single-copy row store.
  setup.cost.txn_fixed_us = 640.0;
  // Bitmap merge mode: background version folds run through the
  // maintenance pump on the A side. In eager mode MaintenanceStep is a
  // no-op, so the pump wakes once per commit and parks immediately.
  setup.has_maintenance = true;
  return setup;
}

SimSetup TidbDistSimSetup() {
  SimSetup setup;
  setup.t_cores = 24;  // 3 TiKV nodes
  setup.a_cores = 16;  // 2 TiFlash nodes
  setup.separate_pools = true;
  setup.lock_hold_fraction = 0.25;
  setup.cost.txn_fixed_us = 640.0;
  // The surcharge model: distributed transactions pay a FLAT TCP/IP CPU
  // overhead and network round trip (Section 6.5.2) regardless of how
  // many shards each one actually touched. Retained as the fallback
  // --dist-model=surcharge; the sharded model below replaces the flat
  // 800us with a per-participant charge from real routing.
  setup.cost.t_work_multiplier = 4.0;
  setup.cost.txn_extra_latency_us = 800.0;
  setup.has_maintenance = true;  // background folds (bitmap merge mode)
  return setup;
}

SimSetup ShardedSimSetup(uint32_t shards) {
  if (shards < 1) shards = 1;
  SimSetup setup;
  // Each shard node contributes TiKV-style T cores and TiFlash-style A
  // cores; compute scales linearly with the node count.
  setup.t_cores = 8 * static_cast<int>(shards);
  setup.a_cores = 8 * static_cast<int>(shards);
  setup.separate_pools = true;
  setup.lock_hold_fraction = 0.25;
  setup.cost.txn_fixed_us = 640.0;
  // Distributed-transaction CPU overhead (marshalling, TCP/IP) applies
  // to every transaction; the network round trips are charged per
  // coordinated shard via TxnOutcome::shards_touched (400us per
  // participant — one prepare + one decide leg), so single-shard
  // transactions pay one round trip and cross-shard 2PC pays
  // proportionally more.
  setup.cost.t_work_multiplier = 4.0;
  setup.cost.txn_extra_latency_us = 400.0;
  setup.has_maintenance = true;  // folds + per-shard standby replay
  return setup;
}

namespace {

/// Per-run mutable state shared by the simulated clients.
struct RunState {
  RunState(HtapEngine* engine, WorkloadContext* context,
           const SimSetup& setup, const WorkloadConfig& config)
      : engine(engine),
        context(context),
        setup(setup),
        config(config),
        handles(EngineHandles::Resolve(*engine->primary_catalog(),
                                       context->num_freshness_tables)),
        t_pool(&sim, "t-pool", setup.t_cores),
        a_pool_storage(
            setup.separate_pools
                ? std::make_unique<CorePool>(&sim, "a-pool", setup.a_cores)
                : nullptr),
        a_pool(setup.separate_pools ? a_pool_storage.get() : &t_pool),
        locks(setup.lock_hold_fraction) {
    warmup_end = config.warmup_seconds;
    end = config.warmup_seconds + config.measure_seconds;
    tracker.SetNumClients(
        static_cast<uint32_t>(std::max(config.t_clients, 1)));
  }

  bool InWindow(TimePoint t) const { return t >= warmup_end && t <= end; }

  HtapEngine* engine;
  WorkloadContext* context;
  const SimSetup& setup;
  const WorkloadConfig& config;
  EngineHandles handles;

  Simulation sim;
  CorePool t_pool;
  std::unique_ptr<CorePool> a_pool_storage;
  CorePool* a_pool;
  RowLockModel locks;
  LsnWaitQueue lsn_waits;
  FreshnessTracker tracker;
  obs::Observability obs;  // clock == sim's virtual clock

  std::vector<FreshnessTracker::Observation> observations;
  RunMetrics metrics;
  TimePoint warmup_end = 0;
  TimePoint end = 0;
  bool applier_idle = true;

  void WakeApplier();
  void ApplierPump();
};

void RunState::ApplierPump() {
  WorkMeter meter;
  if (!engine->MaintenanceStep(&meter)) {
    if (engine->MaintenancePending() > 0) {
      // Backing off from a replication fault with records still
      // outstanding: poll again shortly rather than parking (a parked
      // applier would deadlock REMOTE_APPLY clients waiting on a
      // dropped record, since they commit nothing to wake it).
      sim.Schedule(50e-6, [this] { ApplierPump(); });
      return;
    }
    applier_idle = true;
    return;
  }
  const uint64_t applied = engine->applied_lsn();
  const double cpu = setup.cost.ReplayCpuSeconds(meter);
  const TimePoint submit = sim.Now();
  a_pool->Submit(cpu, [this, applied, submit] {
    if (obs.tracer != nullptr) {
      obs.tracer->RecordSpan("wal-replay", "repl", obs::kTrackApplier, submit,
                             sim.Now(),
                             "\"lsn\":" + std::to_string(applied));
    }
    lsn_waits.Publish(applied);
    ApplierPump();
  });
}

void RunState::WakeApplier() {
  if (!setup.has_maintenance || !applier_idle) return;
  applier_idle = false;
  ApplierPump();
}

/// A simulated transactional client: issues transactions back-to-back,
/// executing each for real against the engine at issue time and modeling
/// its duration (CPU on the T pool + lock waits + commit waits).
class SimTClient {
 public:
  SimTClient(RunState* s, uint32_t id, uint64_t seed)
      : s_(s), id_(id), rng_(seed) {}

  void Start() { IssueNext(); }

 private:
  void IssueNext() {
    if (s_->sim.Now() >= s_->end) return;
    const TxnParams params = GenerateTxnParams(s_->context, &rng_);
    ++txn_num_;
    type_ = params.type;
    issue_time_ = s_->sim.Now();

    WorkMeter meter;
    const TxnBody body = MakeTxnBody(params, s_->handles, id_, txn_num_);
    TxnOutcome outcome =
        s_->engine->ExecuteTransaction(body, id_, txn_num_, &meter);
    const uint64_t aborts = static_cast<uint64_t>(outcome.attempts - 1);
    s_->metrics.aborts += aborts;
    s_->metrics.aborts_by_type[static_cast<int>(params.type)] += aborts;
    if (!outcome.status.ok()) {
      ++s_->metrics.failed;
      s_->sim.Schedule(1e-3, [this] { IssueNext(); });  // back off, retry
      return;
    }
    if (outcome.lsn != 0) s_->WakeApplier();

    const double cpu = s_->setup.cost.TxnCpuSeconds(meter);
    // Row-lock waits: written rows are held for roughly the wall time of
    // the transaction, estimated as CPU inflated by the current load.
    const double inflation = std::max(
        1.0, static_cast<double>(s_->t_pool.active_jobs() + 1) /
                 s_->t_pool.cores());
    const double full_wait =
        s_->locks.AcquireAll(outcome.write_keys, s_->sim.Now(),
                             cpu * inflation);
    // Delta-written rows wait on the same ledger but re-hold for only a
    // sliver of the service time; the transaction starts when its last
    // row (of either kind) frees up.
    const double delta_wait = s_->locks.AcquireAll(
        outcome.delta_keys, s_->sim.Now(), cpu * inflation,
        s_->setup.delta_hold_fraction);
    const double lock_wait = std::max(full_wait, delta_wait);
    s_->metrics.lock_wait_seconds += lock_wait;
    // Retry backoff accrued by the real engine execution is replayed as
    // simulated think time before the service begins.
    const double pre_service = lock_wait + outcome.backoff_s;
    auto submit = [this, cpu, outcome = std::move(outcome)]() mutable {
      s_->t_pool.Submit(cpu, [this, outcome = std::move(outcome)] {
        OnCpuDone(outcome);
      });
    };
    if (pre_service > 0) {
      s_->sim.Schedule(pre_service, std::move(submit));
    } else {
      submit();
    }
  }

  void OnCpuDone(const TxnOutcome& outcome) {
    // Backpressure throttles and injected ship delays stall the client
    // in addition to the commit wait itself. The per-transaction network
    // latency scales with the shards the transaction coordinated across
    // (one 2PC round trip per participant); single-node engines always
    // report shards_touched == 1.
    const double extra =
        s_->setup.cost.txn_extra_latency_us * 1e-6 *
            static_cast<double>(std::max(outcome.shards_touched, 1)) +
        outcome.wait.throttle_s;
    switch (outcome.wait.kind) {
      case CommitWait::Kind::kNone:
        wait_name_ = nullptr;
        Defer(extra, [this] { Finish(); });
        return;
      case CommitWait::Kind::kShipDelay:
        wait_name_ = "commit-wait-ship";
        wait_start_ = s_->sim.Now();
        Defer(extra + s_->setup.cost.ShipDelaySeconds(outcome.wait.bytes),
              [this] { Finish(); });
        return;
      case CommitWait::Kind::kReplicaApplied: {
        wait_name_ = "commit-wait-apply";
        wait_start_ = s_->sim.Now();
        const uint64_t lsn = outcome.wait.lsn;
        Defer(extra, [this, lsn] {
          s_->lsn_waits.WaitFor(lsn, [this] { Finish(); });
        });
        return;
      }
    }
  }

  void Defer(double delay, std::function<void()> fn) {
    if (delay > 0) {
      s_->sim.Schedule(delay, std::move(fn));
    } else {
      fn();
    }
  }

  void Finish() {
    const TimePoint now = s_->sim.Now();
    s_->tracker.RecordCommit(id_, txn_num_, now);
    if (s_->InWindow(now)) {
      ++s_->metrics.committed;
      ++s_->metrics.committed_by_type[static_cast<int>(type_)];
      const double latency = now - issue_time_;
      s_->metrics.txn_latency.Add(latency);
      s_->metrics.txn_latency_by_type[static_cast<int>(type_)].Add(latency);
    }
    if (s_->obs.tracer != nullptr) {
      const uint32_t track = obs::kTrackTClientBase + (id_ - 1);
      // Record the outer span first so the commit-wait child it contains
      // follows it in the export's recording-order tiebreak.
      s_->obs.tracer->RecordSpan(
          TxnTypeName(type_), "txn", track, issue_time_, now,
          "\"txn_num\":" + std::to_string(txn_num_));
      if (wait_name_ != nullptr) {
        s_->obs.tracer->RecordSpan(wait_name_, "txn", track, wait_start_,
                                   now);
      }
    }
    wait_name_ = nullptr;
    IssueNext();
  }

  RunState* s_;
  uint32_t id_;  // 1-based
  Rng rng_;
  uint64_t txn_num_ = 0;
  TimePoint issue_time_ = 0;
  TimePoint wait_start_ = 0;
  const char* wait_name_ = nullptr;
  TxnType type_ = TxnType::kNewOrder;
};

/// A simulated analytical client: runs random permutations of the
/// 13-query batch (Section 5.3), executing each query for real at issue
/// time and modeling its duration on the A pool.
class SimAClient {
 public:
  SimAClient(RunState* s, uint32_t index, uint64_t seed)
      : s_(s), index_(index), rng_(seed) {
    for (int i = 0; i < kNumQueries; ++i) batch_[i] = i;
    batch_pos_ = kNumQueries;  // force a shuffle on first issue
  }

  void Start() { IssueNext(); }

 private:
  void IssueNext() {
    if (s_->sim.Now() >= s_->end) return;
    if (batch_pos_ >= kNumQueries) {
      // New random permutation of the batch.
      for (int i = kNumQueries - 1; i > 0; --i) {
        std::swap(batch_[i], batch_[rng_.Uniform(0, i)]);
      }
      batch_pos_ = 0;
    }
    const int qid = batch_[batch_pos_++];
    const TimePoint issue_time = s_->sim.Now();

    WorkMeter meter;
    AnalyticsSession session = s_->engine->BeginAnalytics(&meter);
    ExecContext ctx{&meter};
    // Static morsel assignment keeps the metered work (and thus the
    // simulated duration) a pure function of the data — never of how the
    // host scheduled the worker threads.
    ctx.dop = s_->config.dop;
    ctx.dynamic_morsels = false;
    ctx.vectorized = s_->config.vectorized;
    if (s_->config.batch_rows > 0) {
      ctx.batch_rows = static_cast<size_t>(s_->config.batch_rows);
    }
    ctx.session_pin = session.guard;
    // Per-execution profile on the virtual clock: during RunQuery no
    // virtual time elapses, so the timing columns are zero — the tree,
    // row counts and work-meter attribution are the payload, and they
    // fold deterministically into the run's per-query aggregate.
    obs::PlanProfile profile(s_->sim.clock());
    if (s_->config.profile_queries) ctx.profile = &profile;
    QueryResult result = RunQuery(qid, *session.source,
                                  s_->context->num_freshness_tables, &ctx);
    ctx.session_pin.reset();
    session.source.reset();
    session.guard.reset();
    if (s_->config.profile_queries) {
      s_->metrics.query_profiles[qid].Accumulate(profile);
      if (s_->obs.tracer != nullptr) {
        profile.EmitSpans(s_->obs.tracer, obs::kTrackAClientBase + index_);
      }
    }

    const double cpu = s_->setup.cost.QueryCpuSeconds(meter);
    s_->a_pool->SubmitParallel(
        cpu, s_->config.dop,
        [this, qid, issue_time, result = std::move(result)] {
          const TimePoint now = s_->sim.Now();
          if (s_->obs.tracer != nullptr) {
            s_->obs.tracer->RecordSpan(
                QueryName(qid), "query", obs::kTrackAClientBase + index_,
                issue_time, now, "\"dop\":" + std::to_string(s_->config.dop));
            // All pieces of a SubmitParallel batch progress at the same
            // rate from the same demand, so each way's span is exactly
            // [submission, completion] — see CorePool::SubmitParallel.
            if (s_->config.dop > 1) {
              for (int w = 0; w < s_->config.dop; ++w) {
                s_->obs.tracer->RecordSpan(
                    "morsel-way", "morsel",
                    obs::MorselTrack(index_, static_cast<uint32_t>(w)),
                    issue_time, now, "\"way\":" + std::to_string(w));
              }
            }
          }
          if (s_->InWindow(now)) {
            ++s_->metrics.queries;
            const double latency = now - issue_time;
            s_->metrics.query_latency.Add(latency);
            s_->metrics.query_latency_by_id[qid].Add(latency);
            FreshnessTracker::Observation obs;
            obs.query_start = issue_time;
            obs.seen.assign(
                result.freshness.begin(),
                result.freshness.begin() +
                    std::min<size_t>(result.freshness.size(),
                                     static_cast<size_t>(
                                         s_->config.t_clients)));
            s_->observations.push_back(std::move(obs));
          }
          IssueNext();
        });
  }

  RunState* s_;
  uint32_t index_;  // 0-based
  Rng rng_;
  int batch_[kNumQueries];
  int batch_pos_ = 0;
};

}  // namespace

SimDriver::SimDriver(HtapEngine* engine, WorkloadContext* context,
                     SimSetup setup)
    : engine_(engine), context_(context), setup_(std::move(setup)) {}

RunMetrics SimDriver::Run(const WorkloadConfig& config) {
  if (static_cast<uint32_t>(config.t_clients) >
      context_->num_freshness_tables) {
    std::fprintf(stderr,
                 "SimDriver: %d T-clients exceed the %u FRESHNESS_j "
                 "tables created at load time\n",
                 config.t_clients, context_->num_freshness_tables);
    std::abort();
  }
  // Reset to the initial database image (Section 6.1).
  Status reset = engine_->Reset();
  assert(reset.ok());
  (void)reset;
  context_->Reset();

  RunState state(engine_, context_, setup_, config);
  Rng seeder(config.seed);

  // Per-run observability: a fresh registry every Run (so counters start
  // at zero and same-seed runs snapshot byte-identical values), spans on
  // the simulation's virtual clock.
  obs::MetricsRegistry registry;
  obs::PreRegisterDomainMetrics(&registry);
  state.t_pool.RegisterMetrics(&registry);
  if (state.a_pool_storage != nullptr) {
    state.a_pool_storage->RegisterMetrics(&registry);
  }
  if (tracer_ != nullptr) {
    tracer_->Clear();
    tracer_->SetTrackName(obs::kTrackApplier, "wal-applier");
    tracer_->SetTrackName(obs::kTrackEngine, "engine");
    for (int i = 0; i < config.t_clients; ++i) {
      tracer_->SetTrackName(obs::kTrackTClientBase + i,
                            "t-client " + std::to_string(i + 1));
    }
    for (int i = 0; i < config.a_clients; ++i) {
      tracer_->SetTrackName(obs::kTrackAClientBase + i,
                            "a-client " + std::to_string(i + 1));
      for (int w = 0; w < config.dop && config.dop > 1; ++w) {
        tracer_->SetTrackName(
            obs::MorselTrack(static_cast<uint32_t>(i),
                             static_cast<uint32_t>(w)),
            "a-client " + std::to_string(i + 1) + " way " +
                std::to_string(w));
      }
    }
  }
  state.obs = obs::Observability{&registry, tracer_, state.sim.clock()};
  engine_->SetObservability(state.obs);

  std::vector<std::unique_ptr<SimTClient>> t_clients;
  t_clients.reserve(config.t_clients);
  for (int i = 0; i < config.t_clients; ++i) {
    t_clients.push_back(std::make_unique<SimTClient>(
        &state, static_cast<uint32_t>(i + 1), seeder.Next()));
  }
  std::vector<std::unique_ptr<SimAClient>> a_clients;
  a_clients.reserve(config.a_clients);
  for (int i = 0; i < config.a_clients; ++i) {
    a_clients.push_back(std::make_unique<SimAClient>(
        &state, static_cast<uint32_t>(i), seeder.Next()));
  }

  // Stagger client starts slightly to avoid artificial lockstep.
  for (size_t i = 0; i < t_clients.size(); ++i) {
    SimTClient* client = t_clients[i].get();
    state.sim.Schedule(static_cast<double>(i) * 13e-6,
                       [client] { client->Start(); });
  }
  for (size_t i = 0; i < a_clients.size(); ++i) {
    SimAClient* client = a_clients[i].get();
    state.sim.Schedule(static_cast<double>(i) * 17e-6,
                       [client] { client->Start(); });
  }

  // Clients stop issuing at `end`; remaining events drain afterwards.
  state.sim.RunToCompletion();

  RunMetrics metrics = std::move(state.metrics);
  // Snapshot while the pools (whose gauges probe into `state`) are still
  // alive, then detach the engine from the run-local registry.
  if (tracer_ != nullptr) {
    registry.GetGauge(obs::kTraceDroppedSpans)
        ->Set(static_cast<double>(tracer_->dropped()));
  }
  metrics.observed = registry.Snapshot();
  engine_->SetObservability(obs::Observability{});
  metrics.measure_seconds = config.measure_seconds;
  metrics.t_throughput =
      static_cast<double>(metrics.committed) / config.measure_seconds;
  metrics.a_throughput =
      static_cast<double>(metrics.queries) / config.measure_seconds;
  for (const FreshnessTracker::Observation& obs : state.observations) {
    metrics.freshness.Add(state.tracker.Score(obs));
  }
  return metrics;
}

// ---------------------------------------------------------------------------
// Wall-clock driver.
// ---------------------------------------------------------------------------

ThreadedDriver::ThreadedDriver(HtapEngine* engine, WorkloadContext* context,
                               double ship_delay_seconds)
    : engine_(engine),
      context_(context),
      ship_delay_seconds_(ship_delay_seconds) {}

RunMetrics ThreadedDriver::Run(const WorkloadConfig& config) {
  if (static_cast<uint32_t>(config.t_clients) >
      context_->num_freshness_tables) {
    std::fprintf(stderr,
                 "ThreadedDriver: %d T-clients exceed the %u FRESHNESS_j "
                 "tables created at load time\n",
                 config.t_clients, context_->num_freshness_tables);
    std::abort();
  }
  Status reset = engine_->Reset();
  assert(reset.ok());
  (void)reset;
  context_->Reset();

  const EngineHandles handles = EngineHandles::Resolve(
      *engine_->primary_catalog(), context_->num_freshness_tables);
  WallClock clock;
  FreshnessTracker tracker;
  tracker.SetNumClients(static_cast<uint32_t>(std::max(config.t_clients, 1)));

  // Per-run observability: same API as the simulated driver, but spans
  // record wall time (the injected clock is the WallClock above).
  obs::MetricsRegistry registry;
  obs::PreRegisterDomainMetrics(&registry);
  if (tracer_ != nullptr) {
    tracer_->Clear();
    tracer_->SetTrackName(obs::kTrackApplier, "wal-applier");
    tracer_->SetTrackName(obs::kTrackEngine, "engine");
    for (int i = 0; i < config.t_clients; ++i) {
      tracer_->SetTrackName(obs::kTrackTClientBase + i,
                            "t-client " + std::to_string(i + 1));
    }
    for (int i = 0; i < config.a_clients; ++i) {
      tracer_->SetTrackName(obs::kTrackAClientBase + i,
                            "a-client " + std::to_string(i + 1));
      for (int w = 0; w < config.dop && config.dop > 1; ++w) {
        tracer_->SetTrackName(
            obs::MorselTrack(static_cast<uint32_t>(i),
                             static_cast<uint32_t>(w)),
            "a-client " + std::to_string(i + 1) + " way " +
                std::to_string(w));
      }
    }
  }
  engine_->SetObservability(obs::Observability{&registry, tracer_, &clock});

  const double warmup_end = config.warmup_seconds;
  const double end = config.warmup_seconds + config.measure_seconds;
  std::atomic<bool> stop{false};

  struct TLocal {
    uint64_t committed = 0;
    uint64_t failed = 0;
    uint64_t aborts = 0;
    uint64_t committed_by_type[3] = {0, 0, 0};
    uint64_t aborts_by_type[3] = {0, 0, 0};
    Sampler latency;
    Sampler latency_by_type[3];
  };
  struct ALocal {
    uint64_t queries = 0;
    Sampler latency;
    Sampler latency_by_id[kNumQueries];
    std::vector<FreshnessTracker::Observation> observations;
    obs::PlanProfile profiles[kNumQueries];  // this client's aggregates
  };
  std::vector<TLocal> t_locals(config.t_clients);
  std::vector<ALocal> a_locals(config.a_clients);

  // Applier thread (isolated engine): replays WAL continuously.
  std::thread applier([&] {
    WorkMeter meter;
    while (!stop.load(std::memory_order_relaxed)) {
      if (!engine_->MaintenanceStep(&meter)) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
  });

  std::vector<std::thread> threads;
  threads.reserve(config.t_clients + config.a_clients);
  for (int i = 0; i < config.t_clients; ++i) {
    threads.emplace_back([&, i] {
      const uint32_t id = static_cast<uint32_t>(i + 1);
      Rng rng(config.seed * 7919 + id);
      TLocal& local = t_locals[i];
      uint64_t txn_num = 0;
      while (clock.Now() < end) {
        const TxnParams params = GenerateTxnParams(context_, &rng);
        ++txn_num;
        const double issue = clock.Now();
        WorkMeter meter;
        const TxnBody body = MakeTxnBody(params, handles, id, txn_num);
        TxnOutcome outcome =
            engine_->ExecuteTransaction(body, id, txn_num, &meter);
        const uint64_t aborts = static_cast<uint64_t>(outcome.attempts - 1);
        local.aborts += aborts;
        local.aborts_by_type[static_cast<int>(params.type)] += aborts;
        if (!outcome.status.ok()) {
          ++local.failed;
          continue;
        }
        if (outcome.wait.throttle_s > 0) {  // backpressure / injected delay
          std::this_thread::sleep_for(
              std::chrono::duration<double>(outcome.wait.throttle_s));
        }
        switch (outcome.wait.kind) {
          case CommitWait::Kind::kNone:
            break;
          case CommitWait::Kind::kShipDelay: {
            const auto delay = std::chrono::duration<double>(
                ship_delay_seconds_);
            std::this_thread::sleep_for(delay);
            break;
          }
          case CommitWait::Kind::kReplicaApplied:
            while (!engine_->IsApplied(outcome.wait.lsn)) {
              std::this_thread::yield();
            }
            break;
        }
        const double now = clock.Now();
        tracker.RecordCommit(id, txn_num, now);
        if (tracer_ != nullptr) {
          tracer_->RecordSpan(TxnTypeName(params.type), "txn",
                              obs::kTrackTClientBase + static_cast<uint32_t>(i),
                              issue, now,
                              "\"txn_num\":" + std::to_string(txn_num));
        }
        if (now >= warmup_end && now <= end) {
          ++local.committed;
          ++local.committed_by_type[static_cast<int>(params.type)];
          local.latency.Add(now - issue);
          local.latency_by_type[static_cast<int>(params.type)].Add(now -
                                                                   issue);
        }
      }
    });
  }
  for (int i = 0; i < config.a_clients; ++i) {
    threads.emplace_back([&, i] {
      Rng rng(config.seed * 104729 + static_cast<uint64_t>(i) + 1);
      ALocal& local = a_locals[i];
      int batch[kNumQueries];
      for (int q = 0; q < kNumQueries; ++q) batch[q] = q;
      int pos = kNumQueries;
      while (clock.Now() < end) {
        if (pos >= kNumQueries) {
          for (int q = kNumQueries - 1; q > 0; --q) {
            std::swap(batch[q], batch[rng.Uniform(0, q)]);
          }
          pos = 0;
        }
        const int qid = batch[pos++];
        const double issue = clock.Now();
        WorkMeter meter;
        AnalyticsSession session = engine_->BeginAnalytics(&meter);
        ExecContext ctx{&meter};
        ctx.dop = config.dop;
        ctx.dynamic_morsels = true;  // real threads: balance via stealing
        ctx.vectorized = config.vectorized;
        if (config.batch_rows > 0) {
          ctx.batch_rows = static_cast<size_t>(config.batch_rows);
        }
        ctx.session_pin = session.guard;
        // Morsel workers record real per-shard spans on this client's
        // lanes (see GatherMergeOp).
        ctx.tracer = tracer_;
        ctx.trace_clock = &clock;
        ctx.trace_tid = obs::MorselTrack(static_cast<uint32_t>(i), 0);
        // Per-execution profile on the wall clock (real operator times);
        // folded into this client's per-query aggregate, merged across
        // clients after the join.
        obs::PlanProfile profile(&clock);
        if (config.profile_queries) ctx.profile = &profile;
        QueryResult result = RunQuery(
            qid, *session.source, context_->num_freshness_tables, &ctx);
        ctx.session_pin.reset();
        session.guard.reset();
        if (config.profile_queries) {
          local.profiles[qid].Accumulate(profile);
          if (tracer_ != nullptr) {
            profile.EmitSpans(
                tracer_, obs::kTrackAClientBase + static_cast<uint32_t>(i));
          }
        }
        const double now = clock.Now();
        if (tracer_ != nullptr) {
          tracer_->RecordSpan(QueryName(qid), "query",
                              obs::kTrackAClientBase + static_cast<uint32_t>(i),
                              issue, now,
                              "\"dop\":" + std::to_string(config.dop));
        }
        if (now >= warmup_end && now <= end) {
          ++local.queries;
          local.latency.Add(now - issue);
          local.latency_by_id[qid].Add(now - issue);
          FreshnessTracker::Observation obs;
          obs.query_start = issue;
          obs.seen.assign(
              result.freshness.begin(),
              result.freshness.begin() +
                  std::min<size_t>(result.freshness.size(),
                                   static_cast<size_t>(config.t_clients)));
          local.observations.push_back(std::move(obs));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  stop.store(true);
  applier.join();

  RunMetrics metrics;
  if (tracer_ != nullptr) {
    registry.GetGauge(obs::kTraceDroppedSpans)
        ->Set(static_cast<double>(tracer_->dropped()));
  }
  metrics.observed = registry.Snapshot();
  engine_->SetObservability(obs::Observability{});
  metrics.measure_seconds = config.measure_seconds;
  for (const TLocal& local : t_locals) {
    metrics.committed += local.committed;
    metrics.failed += local.failed;
    metrics.aborts += local.aborts;
    metrics.txn_latency.Merge(local.latency);
    for (int t = 0; t < 3; ++t) {
      metrics.committed_by_type[t] += local.committed_by_type[t];
      metrics.aborts_by_type[t] += local.aborts_by_type[t];
      metrics.txn_latency_by_type[t].Merge(local.latency_by_type[t]);
    }
  }
  for (const ALocal& local : a_locals) {
    metrics.queries += local.queries;
    metrics.query_latency.Merge(local.latency);
    for (int q = 0; q < kNumQueries; ++q) {
      metrics.query_latency_by_id[q].Merge(local.latency_by_id[q]);
      metrics.query_profiles[q].Accumulate(local.profiles[q]);
    }
    for (const FreshnessTracker::Observation& obs : local.observations) {
      metrics.freshness.Add(tracker.Score(obs));
    }
  }
  metrics.t_throughput =
      static_cast<double>(metrics.committed) / config.measure_seconds;
  metrics.a_throughput =
      static_cast<double>(metrics.queries) / config.measure_seconds;
  return metrics;
}

}  // namespace hattrick
