#ifndef HATTRICK_HATTRICK_FRONTIER_H_
#define HATTRICK_HATTRICK_FRONTIER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "hattrick/driver.h"

namespace hattrick {

/// One measured operating point of the grid graph.
struct OperatingPoint {
  int t_clients = 0;
  int a_clients = 0;
  double tps = 0;
  double qps = 0;
  double freshness_p99 = 0;   // 99th percentile freshness (seconds)
  double freshness_mean = 0;

  /// Interference attribution, pulled from the run's metrics snapshot:
  /// why this point sits where it does (lock queueing, merge and replay
  /// work competing with queries, validation aborts).
  double lock_wait_s = 0;       // total T-client lock-queue seconds
  uint64_t merged_rows = 0;     // delta rows merged/folded (hybrid designs)
  uint64_t replay_records = 0;  // WAL records replayed (isolated designs)
  uint64_t aborts = 0;          // retried validation aborts

  /// Tail latencies at this operating point (seconds): how the mix
  /// degrades responsiveness, not just throughput.
  LatencySummary txn_latency;
  LatencySummary query_latency;
};

/// A fixed-T or fixed-A line: one client count held fixed, the other
/// varied (Section 3.3).
struct GridLine {
  bool fixed_t = true;  // true: T-clients fixed, A-clients varied
  int fixed_clients = 0;
  std::vector<OperatingPoint> points;
};

/// The full grid graph plus the derived throughput frontier.
struct GridGraph {
  int tau_max = 0;    // T-clients that maximize pure-T throughput
  int alpha_max = 0;  // A-clients that maximize pure-A throughput
  double xt = 0;      // maximum transactional throughput (tps)
  double xa = 0;      // maximum analytical throughput (qps)
  std::vector<GridLine> fixed_t_lines;
  std::vector<GridLine> fixed_a_lines;
  /// The Pareto-maximal points (ascending tps, descending qps).
  std::vector<OperatingPoint> frontier;
};

/// Options of the saturation method (Section 3.3). The paper uses six
/// lines of six points; the defaults trade a little resolution for
/// simulation time and are overridden by the figure benchmarks as needed.
struct FrontierOptions {
  int lines = 5;            // fixed-T lines == fixed-A lines
  int points_per_line = 5;
  int max_clients = 48;
  /// Saturation search stops when adding clients improves throughput by
  /// less than this fraction.
  double saturation_epsilon = 0.03;
};

/// Measures one (t_clients, a_clients) operating point.
using PointRunner = std::function<OperatingPoint(int t_clients,
                                                 int a_clients)>;

/// Wraps a SimDriver as a PointRunner using `base` for the run
/// parameters (seed, periods).
PointRunner MakeRunner(SimDriver* driver, const WorkloadConfig& base);

/// Finds the client count in [1, max_clients] that saturates throughput:
/// client counts are swept (1, 2, 4, ..) until the improvement falls
/// below epsilon; returns the best count found.
int FindSaturation(const std::function<double(int)>& throughput_of,
                   int max_clients, double epsilon);

/// Runs the full saturation method: finds tau_max/alpha_max, sweeps the
/// fixed-T and fixed-A lines, and extracts the frontier. `progress` (may
/// be null) receives a human-readable note per run.
GridGraph BuildGridGraph(const PointRunner& runner,
                         const FrontierOptions& options,
                         const std::function<void(const std::string&)>&
                             progress = nullptr);

/// The paper's Figure 1a "sampling method": measures `n` random
/// (t_clients, a_clients) mixes with t <= max_t, a <= max_a (skipping
/// 0:0), deterministic in `seed`. The Pareto frontier of the sample
/// approximates the saturation method's frontier at much higher cost.
std::vector<OperatingPoint> SampleOperatingPoints(const PointRunner& runner,
                                                  int n, int max_t,
                                                  int max_a, uint64_t seed);

/// Pareto-maximal subset of `points` (ascending tps). Points dominated
/// in both tps and qps are dropped.
std::vector<OperatingPoint> ParetoFrontier(
    std::vector<OperatingPoint> points);

/// Area under the frontier polyline (trapezoidal) normalized by the
/// bounding-box area XT*XA. 1.0 = perfect isolation (frontier on the
/// box), 0.5 = the proportional line, -> 0 = total interference.
double FrontierCoverage(const GridGraph& grid);

/// Mean signed deviation of the frontier from the proportional line,
/// normalized: positive = above the line (toward isolation), negative =
/// below (interference).
double ProportionalDeviation(const GridGraph& grid);

/// The design category the frontier shape reveals (Section 2.3 "discover
/// the design category"): isolation (near bounding box), proportional
/// trade-off, or interference (near the axes).
enum class FrontierPattern { kIsolation, kProportional, kInterference };

const char* FrontierPatternName(FrontierPattern pattern);

/// Classifies by frontier coverage: >= 0.75 isolation, >= 0.45
/// proportional, else interference.
FrontierPattern ClassifyFrontier(const GridGraph& grid);

/// True if `a` envelops `b`: for every frontier point of `b` there is an
/// operating point of `a` that weakly dominates it (the Section 6.6
/// comparison rule).
bool Envelops(const GridGraph& a, const GridGraph& b);

}  // namespace hattrick

#endif  // HATTRICK_HATTRICK_FRONTIER_H_
