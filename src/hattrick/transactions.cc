#include "hattrick/transactions.h"

#include <cassert>
#include <set>

#include "hattrick/hattrick_schema.h"

namespace hattrick {

namespace {

const char* const kPriorities[5] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                    "4-NOT SPECI", "5-LOW"};
const char* const kShipModes[7] = {"REG AIR", "AIR",  "RAIL", "SHIP",
                                   "TRUCK",   "MAIL", "FOB"};

/// Finds the first visible row with row[col] == value, via `index` when
/// available, else by scanning the table (the no-index fallback).
Status LookupByValue(TxnContext* txn, TableId table_id,
                     const IndexInfo* index, size_t col, const Value& value,
                     Rid* rid_out, Row* row_out, WorkMeter* meter) {
  if (index != nullptr) {
    bool found = false;
    txn->IndexLookup(*index, {value},
                     [&](Rid rid, const Row& row) {
                       *rid_out = rid;
                       *row_out = row;
                       found = true;
                       return false;  // first match suffices
                     },
                     meter);
    return found ? Status::OK() : Status::NotFound("key not found");
  }
  // Sequential scan fallback.
  bool found = false;
  txn->ScanVisible(
      table_id,
      [&](Rid rid, const Row& row) {
        if (row[col] == value) {
          *rid_out = rid;
          *row_out = row;
          found = true;
          return false;
        }
        return true;
      },
      meter);
  return found ? Status::OK() : Status::NotFound("key not found");
}

/// Appends the FRESHNESS_j update (Section 4.2): every transaction writes
/// its client-local sequence number into its client's single-row table.
Status UpdateFreshness(TxnContext* txn, const EngineHandles& handles,
                       uint32_t client, uint64_t txn_num, WorkMeter* meter) {
  assert(client >= 1 && client <= handles.freshness.size());
  const TableId table_id = handles.freshness[client - 1];
  Row old_row;
  HATTRICK_RETURN_IF_ERROR(txn->Read(table_id, /*rid=*/0, &old_row, meter));
  txn->BufferUpdate(table_id, /*rid=*/0, old_row,
                    Row{static_cast<int64_t>(txn_num)});
  return Status::OK();
}

Status RunNewOrder(const TxnParams& params, const EngineHandles& handles,
                   uint32_t client, uint64_t txn_num, TxnContext* txn,
                   WorkMeter* meter) {
  // Customer by name (secondary index seek).
  Rid rid;
  Row customer;
  HATTRICK_RETURN_IF_ERROR(
      LookupByValue(txn, handles.customer, handles.customer_name,
                    cust::kName, Value(params.customer_name), &rid,
                    &customer, meter));
  const int64_t custkey = customer[cust::kCustKey].AsInt();

  // Order date must exist in DATE.
  Row date_row;
  HATTRICK_RETURN_IF_ERROR(
      LookupByValue(txn, handles.date, handles.date_pk, date::kDateKey,
                    Value(params.orderdate), &rid, &date_row, meter));

  // Resolve each line's part (price) and supplier, compute totals.
  struct ResolvedLine {
    int64_t partkey;
    int64_t suppkey;
    double extended;
  };
  std::vector<ResolvedLine> resolved;
  resolved.reserve(params.lines.size());
  double total = 0;
  for (const TxnParams::OrderLine& line : params.lines) {
    Row part_row;
    HATTRICK_RETURN_IF_ERROR(
        LookupByValue(txn, handles.part, handles.part_pk, part::kPartKey,
                      Value(line.partkey), &rid, &part_row, meter));
    Row supplier_row;
    HATTRICK_RETURN_IF_ERROR(LookupByValue(
        txn, handles.supplier, handles.supplier_name, supp::kName,
        Value(line.supplier_name), &rid, &supplier_row, meter));
    const double price = part_row[part::kPrice].AsDouble();
    const double extended = price * static_cast<double>(line.quantity);
    total += extended;
    resolved.push_back(ResolvedLine{line.partkey,
                                    supplier_row[supp::kSuppKey].AsInt(),
                                    extended});
  }

  // Insert the order's lineorders with the computed totals.
  for (size_t i = 0; i < params.lines.size(); ++i) {
    const TxnParams::OrderLine& line = params.lines[i];
    const ResolvedLine& r = resolved[i];
    const double revenue =
        r.extended * (100.0 - static_cast<double>(line.discount)) / 100.0;
    txn->BufferInsert(handles.lineorder,
                     Row{
                         params.orderkey,
                         static_cast<int64_t>(i + 1),
                         custkey,
                         r.partkey,
                         r.suppkey,
                         params.orderdate,
                         line.priority,
                         int64_t{0},
                         line.quantity,
                         r.extended,
                         total,
                         line.discount,
                         revenue,
                         0.6 * r.extended,
                         line.tax,
                         params.orderdate,
                         line.shipmode,
                     });
  }
  return UpdateFreshness(txn, handles, client, txn_num, meter);
}

Status RunPayment(const TxnParams& params, const EngineHandles& handles,
                  uint32_t client, uint64_t txn_num, TxnContext* txn,
                  WorkMeter* meter) {
  // Customer by name 60% of the time, by key otherwise (Section 5.2.1).
  Rid cust_rid;
  Row customer;
  if (params.by_custkey) {
    HATTRICK_RETURN_IF_ERROR(
        LookupByValue(txn, handles.customer, handles.customer_pk,
                      cust::kCustKey, Value(params.custkey), &cust_rid,
                      &customer, meter));
  } else {
    HATTRICK_RETURN_IF_ERROR(
        LookupByValue(txn, handles.customer, handles.customer_name,
                      cust::kName, Value(params.customer_name), &cust_rid,
                      &customer, meter));
  }
  if (params.use_deltas) {
    txn->BufferDelta(handles.customer, cust_rid, cust::kPaymentCnt,
                    Value(int64_t{1}));
  } else {
    Row new_customer = customer;
    new_customer[cust::kPaymentCnt] =
        Value(customer[cust::kPaymentCnt].AsInt() + 1);
    txn->BufferUpdate(handles.customer, cust_rid, customer,
                     std::move(new_customer));
  }

  // Supplier year-to-date balance: the benchmark's hot-row write (a few
  // suppliers absorb most payments at low scale factors). As a
  // commutative delta it commits regardless of concurrent payments on
  // the same supplier; as a full update it is the dominant source of
  // write-write aborts.
  Rid supp_rid;
  Row supplier;
  HATTRICK_RETURN_IF_ERROR(
      LookupByValue(txn, handles.supplier, handles.supplier_pk,
                    supp::kSuppKey, Value(params.suppkey), &supp_rid,
                    &supplier, meter));
  if (params.use_deltas) {
    txn->BufferDelta(handles.supplier, supp_rid, supp::kYtd,
                    Value(params.amount));
  } else {
    Row new_supplier = supplier;
    new_supplier[supp::kYtd] =
        Value(supplier[supp::kYtd].AsDouble() + params.amount);
    txn->BufferUpdate(handles.supplier, supp_rid, supplier,
                     std::move(new_supplier));
  }

  // Payment history.
  txn->BufferInsert(handles.history,
                   Row{params.payment_orderkey,
                       customer[cust::kCustKey].AsInt(), params.amount});
  return UpdateFreshness(txn, handles, client, txn_num, meter);
}

Status RunCountOrders(const TxnParams& params, const EngineHandles& handles,
                      uint32_t client, uint64_t txn_num, TxnContext* txn,
                      WorkMeter* meter) {
  Rid rid;
  Row customer;
  HATTRICK_RETURN_IF_ERROR(
      LookupByValue(txn, handles.customer, handles.customer_name,
                    cust::kName, Value(params.customer_name), &rid,
                    &customer, meter));
  const int64_t custkey = customer[cust::kCustKey].AsInt();

  // Count the customer's distinct orders in LINEORDER.
  std::set<int64_t> orders;
  if (handles.lineorder_custkey != nullptr) {
    txn->IndexLookup(*handles.lineorder_custkey, {Value(custkey)},
                    [&](Rid, const Row& row) {
                      orders.insert(row[lo::kOrderKey].AsInt());
                      return true;
                    },
                    meter);
  } else {
    txn->ScanVisible(
        handles.lineorder,
        [&](Rid, const Row& row) {
          if (row[lo::kCustKey].AsInt() == custkey) {
            orders.insert(row[lo::kOrderKey].AsInt());
          }
          return true;
        },
        meter);
  }
  (void)orders;  // the count is the client-visible result
  return UpdateFreshness(txn, handles, client, txn_num, meter);
}

}  // namespace

const char* TxnTypeName(TxnType type) {
  switch (type) {
    case TxnType::kNewOrder:
      return "new_order";
    case TxnType::kPayment:
      return "payment";
    case TxnType::kCountOrders:
      return "count_orders";
  }
  return "?";
}

EngineHandles EngineHandles::Resolve(const Catalog& catalog,
                                     uint32_t num_freshness_tables) {
  EngineHandles h;
  h.lineorder = catalog.GetTableId(kLineorder);
  h.customer = catalog.GetTableId(kCustomer);
  h.supplier = catalog.GetTableId(kSupplier);
  h.part = catalog.GetTableId(kPart);
  h.date = catalog.GetTableId(kDate);
  h.history = catalog.GetTableId(kHistory);
  h.freshness.reserve(num_freshness_tables);
  for (uint32_t j = 1; j <= num_freshness_tables; ++j) {
    h.freshness.push_back(catalog.GetTableId(FreshnessTableName(j)));
  }
  h.customer_pk = catalog.GetIndex("customer_pk");
  h.customer_name = catalog.GetIndex("customer_name");
  h.supplier_pk = catalog.GetIndex("supplier_pk");
  h.supplier_name = catalog.GetIndex("supplier_name");
  h.part_pk = catalog.GetIndex("part_pk");
  h.date_pk = catalog.GetIndex("date_pk");
  h.lineorder_custkey = catalog.GetIndex("lineorder_custkey");
  return h;
}

TxnParams GenerateTxnParams(WorkloadContext* ctx, Rng* rng) {
  TxnParams params;
  const double p = rng->NextDouble();
  if (p < 0.48) {
    params.type = TxnType::kNewOrder;
    params.orderkey = ctx->next_orderkey.fetch_add(1);
    params.customer_name = CustomerName(
        rng->Uniform(1, static_cast<int64_t>(ctx->num_customers)));
    params.orderdate = DateKeyAt(static_cast<size_t>(
        rng->Uniform(0, static_cast<int64_t>(DatagenConfig::NumDates()) - 1)));
    const int num_lines = static_cast<int>(rng->Uniform(1, 7));
    params.lines.reserve(num_lines);
    const std::string priority = kPriorities[rng->Uniform(0, 4)];
    for (int i = 0; i < num_lines; ++i) {
      TxnParams::OrderLine line;
      line.partkey = rng->Uniform(1, static_cast<int64_t>(ctx->num_parts));
      line.supplier_name = SupplierName(
          rng->Uniform(1, static_cast<int64_t>(ctx->num_suppliers)));
      line.quantity = rng->Uniform(1, 50);
      line.discount = rng->Uniform(0, 10);
      line.tax = rng->Uniform(0, 8);
      line.shipmode = kShipModes[rng->Uniform(0, 6)];
      line.priority = priority;
      params.lines.push_back(std::move(line));
    }
  } else if (p < 0.96) {
    params.type = TxnType::kPayment;
    params.use_deltas = ctx->payment_deltas;
    params.by_custkey = rng->NextDouble() >= 0.60;
    params.custkey =
        rng->Uniform(1, static_cast<int64_t>(ctx->num_customers));
    params.customer_name = CustomerName(params.custkey);
    params.suppkey =
        rng->Uniform(1, static_cast<int64_t>(ctx->num_suppliers));
    params.payment_orderkey =
        rng->Uniform(1, ctx->next_orderkey.load() - 1);
    params.amount =
        static_cast<double>(rng->Uniform(100, 500000)) / 100.0;
  } else {
    params.type = TxnType::kCountOrders;
    params.customer_name = CustomerName(
        rng->Uniform(1, static_cast<int64_t>(ctx->num_customers)));
  }
  return params;
}

TxnBody MakeTxnBody(const TxnParams& params, const EngineHandles& handles,
                    uint32_t client, uint64_t txn_num) {
  return [params, &handles, client, txn_num](TxnContext* txn,
                                             WorkMeter* meter) -> Status {
    switch (params.type) {
      case TxnType::kNewOrder:
        return RunNewOrder(params, handles, client, txn_num, txn, meter);
      case TxnType::kPayment:
        return RunPayment(params, handles, client, txn_num, txn, meter);
      case TxnType::kCountOrders:
        return RunCountOrders(params, handles, client, txn_num, txn, meter);
    }
    return Status::Internal("unknown txn type");
  };
}

}  // namespace hattrick
