#include "hattrick/hattrick_schema.h"

namespace hattrick {

std::string FreshnessTableName(uint32_t client) {
  return "FRESHNESS_" + std::to_string(client);
}

const char* PhysicalSchemaName(PhysicalSchema schema) {
  switch (schema) {
    case PhysicalSchema::kNoIndexes:
      return "none";
    case PhysicalSchema::kSemiIndexes:
      return "semi";
    case PhysicalSchema::kAllIndexes:
      return "all";
  }
  return "?";
}

Schema LineorderSchema() {
  return Schema({{"LO_ORDERKEY", DataType::kInt64},
                 {"LO_LINENUMBER", DataType::kInt64},
                 {"LO_CUSTKEY", DataType::kInt64},
                 {"LO_PARTKEY", DataType::kInt64},
                 {"LO_SUPPKEY", DataType::kInt64},
                 {"LO_ORDERDATE", DataType::kInt64},
                 {"LO_ORDPRIORITY", DataType::kString},
                 {"LO_SHIPPRIORITY", DataType::kInt64},
                 {"LO_QUANTITY", DataType::kInt64},
                 {"LO_EXTENDEDPRICE", DataType::kDouble},
                 {"LO_ORDTOTALPRICE", DataType::kDouble},
                 {"LO_DISCOUNT", DataType::kInt64},
                 {"LO_REVENUE", DataType::kDouble},
                 {"LO_SUPPLYCOST", DataType::kDouble},
                 {"LO_TAX", DataType::kInt64},
                 {"LO_COMMITDATE", DataType::kInt64},
                 {"LO_SHIPMODE", DataType::kString}});
}

Schema CustomerSchema() {
  return Schema({{"C_CUSTKEY", DataType::kInt64},
                 {"C_NAME", DataType::kString},
                 {"C_ADDRESS", DataType::kString},
                 {"C_CITY", DataType::kString},
                 {"C_NATION", DataType::kString},
                 {"C_REGION", DataType::kString},
                 {"C_PHONE", DataType::kString},
                 {"C_MKTSEGMENT", DataType::kString},
                 {"C_PAYMENTCNT", DataType::kInt64}});
}

Schema SupplierSchema() {
  return Schema({{"S_SUPPKEY", DataType::kInt64},
                 {"S_NAME", DataType::kString},
                 {"S_ADDRESS", DataType::kString},
                 {"S_CITY", DataType::kString},
                 {"S_NATION", DataType::kString},
                 {"S_REGION", DataType::kString},
                 {"S_PHONE", DataType::kString},
                 {"S_YTD", DataType::kDouble}});
}

Schema PartSchema() {
  return Schema({{"P_PARTKEY", DataType::kInt64},
                 {"P_NAME", DataType::kString},
                 {"P_MFGR", DataType::kString},
                 {"P_CATEGORY", DataType::kString},
                 {"P_BRAND1", DataType::kString},
                 {"P_COLOR", DataType::kString},
                 {"P_TYPE", DataType::kString},
                 {"P_SIZE", DataType::kInt64},
                 {"P_CONTAINER", DataType::kString},
                 {"P_PRICE", DataType::kDouble}});
}

Schema DateSchema() {
  return Schema({{"D_DATEKEY", DataType::kInt64},
                 {"D_DATE", DataType::kString},
                 {"D_DAYOFWEEK", DataType::kString},
                 {"D_MONTH", DataType::kString},
                 {"D_YEAR", DataType::kInt64},
                 {"D_YEARMONTHNUM", DataType::kInt64},
                 {"D_YEARMONTH", DataType::kString},
                 {"D_DAYNUMINWEEK", DataType::kInt64},
                 {"D_DAYNUMINMONTH", DataType::kInt64},
                 {"D_DAYNUMINYEAR", DataType::kInt64},
                 {"D_MONTHNUMINYEAR", DataType::kInt64},
                 {"D_WEEKNUMINYEAR", DataType::kInt64},
                 {"D_SELLINGSEASON", DataType::kString},
                 {"D_LASTDAYINMONTHFL", DataType::kInt64},
                 {"D_HOLIDAYFL", DataType::kInt64},
                 {"D_WEEKDAYFL", DataType::kInt64}});
}

Schema HistorySchema() {
  return Schema({{"H_ORDERKEY", DataType::kInt64},
                 {"H_CUSTKEY", DataType::kInt64},
                 {"H_AMOUNT", DataType::kDouble}});
}

Schema FreshnessSchema() {
  return Schema({{"TXNNUM", DataType::kInt64}});
}

DatabaseSpec MakeDatabaseSpec(PhysicalSchema physical,
                              uint32_t num_freshness_tables) {
  DatabaseSpec spec;
  spec.tables.push_back({kLineorder, LineorderSchema()});
  spec.tables.push_back({kCustomer, CustomerSchema()});
  spec.tables.push_back({kSupplier, SupplierSchema()});
  spec.tables.push_back({kPart, PartSchema()});
  spec.tables.push_back({kDate, DateSchema()});
  spec.tables.push_back({kHistory, HistorySchema()});
  for (uint32_t j = 1; j <= num_freshness_tables; ++j) {
    spec.tables.push_back({FreshnessTableName(j), FreshnessSchema()});
  }

  if (physical != PhysicalSchema::kNoIndexes) {
    // T-accelerating indexes ("semi"): primary keys for point lookups,
    // name secondaries for the by-name customer/supplier selections, and
    // the LO_CUSTKEY secondary used by count-orders.
    spec.indexes.push_back(
        {"customer_pk", kCustomer, {cust::kCustKey}, /*unique=*/true});
    spec.indexes.push_back(
        {"customer_name", kCustomer, {cust::kName}, /*unique=*/false});
    spec.indexes.push_back(
        {"supplier_pk", kSupplier, {supp::kSuppKey}, /*unique=*/true});
    spec.indexes.push_back(
        {"supplier_name", kSupplier, {supp::kName}, /*unique=*/false});
    spec.indexes.push_back(
        {"part_pk", kPart, {part::kPartKey}, /*unique=*/true});
    spec.indexes.push_back(
        {"date_pk", kDate, {date::kDateKey}, /*unique=*/true});
    spec.indexes.push_back(
        {"lineorder_custkey", kLineorder, {lo::kCustKey}, /*unique=*/false});
  }
  if (physical == PhysicalSchema::kAllIndexes) {
    // A-accelerating indexes over analytical predicate attributes. They
    // give the optimizer index-scan plans for the Q1 flight and charge
    // maintenance to every new-order insert (the paper's SF100 max-T
    // degradation, Section 6.2).
    spec.indexes.push_back({"lineorder_orderdate",
                            kLineorder,
                            {lo::kOrderDate},
                            /*unique=*/false});
    spec.indexes.push_back({"lineorder_partkey",
                            kLineorder,
                            {lo::kPartKey},
                            /*unique=*/false});
    spec.indexes.push_back({"lineorder_suppkey",
                            kLineorder,
                            {lo::kSuppKey},
                            /*unique=*/false});
    spec.indexes.push_back({"lineorder_discount",
                            kLineorder,
                            {lo::kDiscount},
                            /*unique=*/false});
    spec.indexes.push_back({"lineorder_quantity",
                            kLineorder,
                            {lo::kQuantity},
                            /*unique=*/false});
    spec.indexes.push_back(
        {"part_brand1", kPart, {part::kBrand1}, /*unique=*/false});
    spec.indexes.push_back(
        {"part_category", kPart, {part::kCategory}, /*unique=*/false});
    spec.indexes.push_back(
        {"supplier_region", kSupplier, {supp::kRegion}, /*unique=*/false});
    spec.indexes.push_back(
        {"customer_region", kCustomer, {cust::kRegion}, /*unique=*/false});
    spec.indexes.push_back(
        {"date_year", kDate, {date::kYear}, /*unique=*/false});
  }
  return spec;
}

}  // namespace hattrick
