#include "hattrick/frontier.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/rng.h"
#include "obs/metrics.h"

namespace hattrick {

PointRunner MakeRunner(SimDriver* driver, const WorkloadConfig& base) {
  return [driver, base](int t_clients, int a_clients) {
    WorkloadConfig config = base;
    config.t_clients = t_clients;
    config.a_clients = a_clients;
    const RunMetrics metrics = driver->Run(config);
    OperatingPoint point;
    point.t_clients = t_clients;
    point.a_clients = a_clients;
    point.tps = metrics.t_throughput;
    point.qps = metrics.a_throughput;
    if (!metrics.freshness.empty()) {
      point.freshness_p99 = metrics.freshness.Percentile(0.99);
      point.freshness_mean = metrics.freshness.Mean();
    }
    point.lock_wait_s = metrics.lock_wait_seconds;
    // Either delta protocol: eager merges charge kStoreMergeRows,
    // background folds (merge-mode=bitmap) charge kStoreFoldRows.
    point.merged_rows = metrics.observed.CountOf(obs::kStoreMergeRows) +
                        metrics.observed.CountOf(obs::kStoreFoldRows);
    point.replay_records =
        metrics.observed.CountOf(obs::kReplAppliedRecords);
    point.aborts = metrics.aborts;
    point.txn_latency = Summarize(metrics.txn_latency);
    point.query_latency = Summarize(metrics.query_latency);
    return point;
  };
}

int FindSaturation(const std::function<double(int)>& throughput_of,
                   int max_clients, double epsilon) {
  int best_clients = 1;
  double best = throughput_of(1);
  int clients = 1;
  while (clients < max_clients) {
    clients = std::min(max_clients, clients * 2);
    const double value = throughput_of(clients);
    if (value > best * (1.0 + epsilon)) {
      best = value;
      best_clients = clients;
    } else {
      break;  // saturated: no meaningful improvement
    }
  }
  return best_clients;
}

namespace {

std::vector<int> SpreadClients(int max, int count) {
  // `count` client counts spread over [0, max], always including 0 and
  // max, deduplicated (small max values collapse).
  if (count <= 1 || max == 0) {
    // Too few points to spread: just the endpoints (one point when they
    // coincide). Guards the i / (count - 1) division below.
    if (max == 0) return {0};
    return {0, max};
  }
  std::vector<int> out;
  for (int i = 0; i < count; ++i) {
    const int value = static_cast<int>(std::lround(
        static_cast<double>(max) * i / (count - 1)));
    if (out.empty() || value != out.back()) out.push_back(value);
  }
  return out;
}

}  // namespace

GridGraph BuildGridGraph(
    const PointRunner& runner, const FrontierOptions& options,
    const std::function<void(const std::string&)>& progress) {
  auto note = [&](const std::string& message) {
    if (progress) progress(message);
  };

  GridGraph grid;
  // Step 1: saturation search for tau_max and alpha_max (Section 3.3).
  note("saturating pure-T workload");
  grid.tau_max = FindSaturation(
      [&](int clients) { return runner(clients, 0).tps; },
      options.max_clients, options.saturation_epsilon);
  note("saturating pure-A workload");
  grid.alpha_max = FindSaturation(
      [&](int clients) { return runner(0, clients).qps; },
      options.max_clients, options.saturation_epsilon);

  // Step 2: fixed-T and fixed-A lines over [0, tau_max] x [0, alpha_max].
  const std::vector<int> t_values =
      SpreadClients(grid.tau_max, options.lines);
  const std::vector<int> a_values =
      SpreadClients(grid.alpha_max, options.lines);
  const std::vector<int> t_sweep =
      SpreadClients(grid.tau_max, options.points_per_line);
  const std::vector<int> a_sweep =
      SpreadClients(grid.alpha_max, options.points_per_line);

  // Measure each distinct point once; lines share corner points.
  std::vector<OperatingPoint> cache;
  auto measure = [&](int t, int a) -> OperatingPoint {
    for (const OperatingPoint& p : cache) {
      if (p.t_clients == t && p.a_clients == a) return p;
    }
    note("measuring T=" + std::to_string(t) + " A=" + std::to_string(a));
    OperatingPoint p = runner(t, a);
    cache.push_back(p);
    return p;
  };

  for (const int t : t_values) {
    GridLine line;
    line.fixed_t = true;
    line.fixed_clients = t;
    for (const int a : a_sweep) {
      if (t == 0 && a == 0) continue;
      line.points.push_back(measure(t, a));
    }
    grid.fixed_t_lines.push_back(std::move(line));
  }
  for (const int a : a_values) {
    GridLine line;
    line.fixed_t = false;
    line.fixed_clients = a;
    for (const int t : t_sweep) {
      if (t == 0 && a == 0) continue;
      line.points.push_back(measure(t, a));
    }
    grid.fixed_a_lines.push_back(std::move(line));
  }

  // Step 3: extremes and the frontier ("made up from the highest point
  // of each fixed-T and fixed-A line").
  std::vector<OperatingPoint> candidates;
  for (const GridLine& line : grid.fixed_t_lines) {
    const auto it = std::max_element(
        line.points.begin(), line.points.end(),
        [](const OperatingPoint& a, const OperatingPoint& b) {
          return a.qps < b.qps;
        });
    if (it != line.points.end()) candidates.push_back(*it);
  }
  for (const GridLine& line : grid.fixed_a_lines) {
    const auto it = std::max_element(
        line.points.begin(), line.points.end(),
        [](const OperatingPoint& a, const OperatingPoint& b) {
          return a.tps < b.tps;
        });
    if (it != line.points.end()) candidates.push_back(*it);
  }
  for (const OperatingPoint& p : cache) {
    grid.xt = std::max(grid.xt, p.tps);
    grid.xa = std::max(grid.xa, p.qps);
  }
  grid.frontier = ParetoFrontier(std::move(candidates));
  return grid;
}

std::vector<OperatingPoint> SampleOperatingPoints(const PointRunner& runner,
                                                  int n, int max_t,
                                                  int max_a,
                                                  uint64_t seed) {
  Rng rng(seed);
  std::vector<OperatingPoint> samples;
  samples.reserve(static_cast<size_t>(n));
  while (static_cast<int>(samples.size()) < n) {
    const int t = static_cast<int>(rng.Uniform(0, max_t));
    const int a = static_cast<int>(rng.Uniform(0, max_a));
    if (t == 0 && a == 0) continue;
    samples.push_back(runner(t, a));
  }
  return samples;
}

std::vector<OperatingPoint> ParetoFrontier(
    std::vector<OperatingPoint> points) {
  std::sort(points.begin(), points.end(),
            [](const OperatingPoint& a, const OperatingPoint& b) {
              if (a.tps != b.tps) return a.tps < b.tps;
              return a.qps > b.qps;
            });
  // Collapse equal-tps groups to their best point first. The reverse
  // walk below meets an equal-tps group lowest-qps first, so without
  // this a dominated duplicate (same tps, lower qps) would be kept.
  points.erase(std::unique(points.begin(), points.end(),
                           [](const OperatingPoint& a,
                              const OperatingPoint& b) {
                             return a.tps == b.tps;
                           }),
               points.end());
  // Walk from the highest tps down, keeping points whose qps exceeds the
  // best seen so far.
  std::vector<OperatingPoint> frontier;
  double best_qps = -1;
  for (auto it = points.rbegin(); it != points.rend(); ++it) {
    if (it->qps > best_qps) {
      frontier.push_back(*it);
      best_qps = it->qps;
    }
  }
  std::reverse(frontier.begin(), frontier.end());
  return frontier;
}

double FrontierCoverage(const GridGraph& grid) {
  if (grid.xt <= 0 || grid.xa <= 0 || grid.frontier.empty()) return 0;
  // Trapezoidal integration under the frontier polyline (the paper draws
  // the frontier as a connected curve). The leading segment from tps=0
  // is flat at the first point's qps; a perfectly proportional frontier
  // integrates to exactly 0.5, the bounding box to 1.0.
  double area = 0;
  double prev_tps = 0;
  double prev_qps = grid.frontier.front().qps;
  for (const OperatingPoint& p : grid.frontier) {
    area += (p.tps - prev_tps) * 0.5 * (prev_qps + p.qps);
    prev_tps = p.tps;
    prev_qps = p.qps;
  }
  return area / (grid.xt * grid.xa);
}

double ProportionalDeviation(const GridGraph& grid) {
  if (grid.xt <= 0 || grid.xa <= 0 || grid.frontier.empty()) return 0;
  // For each frontier point, signed normalized distance above the
  // proportional line qps = XA * (1 - tps/XT).
  double sum = 0;
  for (const OperatingPoint& p : grid.frontier) {
    const double line_qps = grid.xa * (1.0 - p.tps / grid.xt);
    sum += (p.qps - line_qps) / grid.xa;
  }
  return sum / static_cast<double>(grid.frontier.size());
}

const char* FrontierPatternName(FrontierPattern pattern) {
  switch (pattern) {
    case FrontierPattern::kIsolation:
      return "performance isolation (close to bounding box)";
    case FrontierPattern::kProportional:
      return "proportional trade-off (close to proportional line)";
    case FrontierPattern::kInterference:
      return "negative interference (below proportional line)";
  }
  return "?";
}

FrontierPattern ClassifyFrontier(const GridGraph& grid) {
  const double coverage = FrontierCoverage(grid);
  if (coverage >= 0.75) return FrontierPattern::kIsolation;
  if (coverage >= 0.45) return FrontierPattern::kProportional;
  return FrontierPattern::kInterference;
}

bool Envelops(const GridGraph& a, const GridGraph& b) {
  for (const OperatingPoint& p : b.frontier) {
    bool dominated = false;
    for (const OperatingPoint& q : a.frontier) {
      if (q.tps >= p.tps && q.qps >= p.qps) {
        dominated = true;
        break;
      }
    }
    // Also allow domination by interpolation along a's staircase: a
    // point of b is covered if some a-point has tps >= p.tps with qps >=
    // p.qps (checked above) or the staircase passes above it.
    if (!dominated) {
      for (size_t i = 0; i + 1 < a.frontier.size(); ++i) {
        const OperatingPoint& l = a.frontier[i];
        const OperatingPoint& r = a.frontier[i + 1];
        if (p.tps >= l.tps && p.tps <= r.tps) {
          const double t = (p.tps - l.tps) / std::max(1e-12, r.tps - l.tps);
          const double qps = l.qps + t * (r.qps - l.qps);
          if (qps >= p.qps) {
            dominated = true;
            break;
          }
        }
      }
    }
    if (!dominated) return false;
  }
  return true;
}

}  // namespace hattrick
