#include "shard/two_pc.h"

#include <cstring>

namespace hattrick {

namespace {

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

bool GetU64(const std::string& in, size_t* pos, uint64_t* out) {
  if (*pos + 8 > in.size()) return false;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(in[*pos + i])) << (8 * i);
  }
  *pos += 8;
  *out = v;
  return true;
}

bool GetU32(const std::string& in, size_t* pos, uint32_t* out) {
  if (*pos + 4 > in.size()) return false;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(in[*pos + i])) << (8 * i);
  }
  *pos += 4;
  *out = v;
  return true;
}

}  // namespace

std::string TwoPcRecord::Encode() const {
  std::string out;
  out.push_back(static_cast<char>(kind));
  out.push_back(commit ? 1 : 0);
  PutU64(gtid, &out);
  PutU32(static_cast<uint32_t>(participants.size()), &out);
  for (const uint32_t shard : participants) PutU32(shard, &out);
  return out;
}

bool TwoPcRecord::Decode(const std::string& bytes, TwoPcRecord* out) {
  if (bytes.size() < 2) return false;
  const uint8_t kind_byte = static_cast<uint8_t>(bytes[0]);
  if (kind_byte > 1) return false;
  out->kind = static_cast<Kind>(kind_byte);
  out->commit = bytes[1] != 0;
  size_t pos = 2;
  uint32_t count = 0;
  if (!GetU64(bytes, &pos, &out->gtid)) return false;
  if (!GetU32(bytes, &pos, &count)) return false;
  out->participants.clear();
  out->participants.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t shard = 0;
    if (!GetU32(bytes, &pos, &shard)) return false;
    out->participants.push_back(shard);
  }
  return pos == bytes.size();
}

}  // namespace hattrick
