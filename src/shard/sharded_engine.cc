#include "shard/sharded_engine.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "engine/engine_factory.h"
#include "engine/shared_engine.h"
#include "exec/scan.h"

namespace hattrick {

namespace {

/// Fans one WAL record out to the inner engine's own sink (the hybrid
/// column-store delta feed) and to the shard's replication stream. Runs
/// inside the commit tail, so records arrive in commit order on both.
class TeeSink final : public WalSink {
 public:
  TeeSink(WalSink* inner, WalStream* stream) : inner_(inner), stream_(stream) {}

  void OnCommit(const WalRecord& record) override {
    if (inner_ != nullptr) inner_->OnCommit(record);
    stream_->OnCommit(record);
  }

 private:
  WalSink* inner_;
  WalStream* stream_;
};

/// Drains its children in order — the union of per-shard scans of one
/// logical table. Children produce disjoint row sets (each shard scans
/// its own copy/partition), so concatenation is the exact table scan.
class ConcatOperator final : public Operator {
 public:
  explicit ConcatOperator(std::vector<OperatorPtr> children)
      : children_(std::move(children)) {}

  void Open(ExecContext* ctx) override {
    for (OperatorPtr& child : children_) child->Open(ctx);
    index_ = 0;
  }

  bool Next(ExecContext* ctx, Row* out) override {
    while (index_ < children_.size()) {
      if (children_[index_]->Next(ctx, out)) return true;
      ++index_;
    }
    return false;
  }

  bool NextBatch(ExecContext* ctx, Batch* out) override {
    while (index_ < children_.size()) {
      if (children_[index_]->NextBatch(ctx, out)) return true;
      ++index_;
    }
    return false;
  }

 private:
  std::vector<OperatorPtr> children_;
  size_t index_ = 0;
};

class ShardedDataSource;

/// The DataSource one shard contributes to a scatter/gather plan: the
/// fact table resolves to this shard's local partition, every other
/// hashed table to the all-shard union (join partners are not
/// necessarily co-located with the fact partition), broadcast tables to
/// the local full copy, single-shard tables to their owner.
class RoutedShardSource final : public DataSource {
 public:
  RoutedShardSource(const ShardedDataSource* parent, uint32_t shard)
      : parent_(parent), shard_(shard) {}

  OperatorPtr Scan(const ScanSpec& spec) const override;
  size_t ScanExtent(const std::string& table) const override;

 private:
  const ShardedDataSource* parent_;
  uint32_t shard_;
};

/// Top-level analytics source over N per-shard sessions. Queries planned
/// against it either go through ShardViews() (the scatter/gather path)
/// or call Scan directly (freshness read-backs, serial fallbacks), which
/// routes by placement: hashed tables scan the all-shard union.
class ShardedDataSource final : public DataSource {
 public:
  ShardedDataSource(std::vector<AnalyticsSession> sessions,
                    const ShardRouter* router, const Catalog* catalog,
                    std::string fact_table)
      : sessions_(std::move(sessions)),
        router_(router),
        catalog_(catalog),
        fact_table_(std::move(fact_table)) {
    views_.reserve(sessions_.size());
    for (uint32_t s = 0; s < sessions_.size(); ++s) {
      views_.push_back(std::make_unique<RoutedShardSource>(this, s));
    }
  }

  OperatorPtr Scan(const ScanSpec& spec) const override {
    switch (PlacementFor(spec.table).placement) {
      case Placement::kHashed:
        return ConcatAll(spec);
      case Placement::kBroadcast:
        return sessions_[0].source->Scan(spec);
      case Placement::kSingleShard:
        return sessions_[OwnerOf(spec.table)].source->Scan(spec);
    }
    return nullptr;
  }

  size_t ScanExtent(const std::string& table) const override {
    // The global source cannot be morselized (rid spaces are per-shard);
    // parallelism comes from the per-shard views instead.
    (void)table;
    return 0;
  }

  std::vector<const DataSource*> ShardViews() const override {
    std::vector<const DataSource*> views;
    views.reserve(views_.size());
    for (const auto& view : views_) views.push_back(view.get());
    return views;
  }

  OperatorPtr ScanForShard(const ScanSpec& spec, uint32_t shard) const {
    switch (PlacementFor(spec.table).placement) {
      case Placement::kHashed:
        if (spec.table == fact_table_) {
          return sessions_[shard].source->Scan(spec);
        }
        return ConcatAll(spec);
      case Placement::kBroadcast:
        return sessions_[shard].source->Scan(spec);
      case Placement::kSingleShard:
        return sessions_[OwnerOf(spec.table)].source->Scan(spec);
    }
    return nullptr;
  }

  size_t ExtentForShard(const std::string& table, uint32_t shard) const {
    if (table != fact_table_) return 0;
    return sessions_[shard].source->ScanExtent(table);
  }

  const std::vector<AnalyticsSession>& sessions() const { return sessions_; }

 private:
  const TablePlacement& PlacementFor(const std::string& table) const {
    return router_->PlacementOf(catalog_->GetTableId(table));
  }

  uint32_t OwnerOf(const std::string& table) const {
    return router_->OwnerShard(catalog_->GetTableId(table));
  }

  OperatorPtr ConcatAll(const ScanSpec& spec) const {
    std::vector<OperatorPtr> children;
    children.reserve(sessions_.size());
    for (const AnalyticsSession& session : sessions_) {
      children.push_back(session.source->Scan(spec));
    }
    return std::make_unique<ConcatOperator>(std::move(children));
  }

  std::vector<AnalyticsSession> sessions_;
  const ShardRouter* router_;
  const Catalog* catalog_;
  std::string fact_table_;
  std::vector<std::unique_ptr<RoutedShardSource>> views_;
};

OperatorPtr RoutedShardSource::Scan(const ScanSpec& spec) const {
  return parent_->ScanForShard(spec, shard_);
}

size_t RoutedShardSource::ScanExtent(const std::string& table) const {
  return parent_->ExtentForShard(table, shard_);
}

/// Pins held for the life of an analytics session: one per shard. The
/// top-level guard owns copies so morsel workers (which only copy the
/// top-level guard into their ExecContext) keep every shard pinned even
/// if they outlive the session object.
struct SessionGuards {
  std::vector<std::shared_ptr<void>> pins;
};

}  // namespace

/// Routed per-transaction surface: every operation lands on the shard(s)
/// its table placement dictates; rids cross the boundary in global
/// encoding (shard bits | local rid). One lazy transaction leg per shard.
class ShardedTxnContext final : public TxnContext {
 public:
  ShardedTxnContext(ShardedEngine* engine, IsolationLevel isolation,
                    uint32_t client_id, uint64_t txn_num)
      : engine_(engine),
        isolation_(isolation),
        client_id_(client_id),
        txn_num_(txn_num),
        legs_(engine->config_.shards) {}

  struct Leg {
    std::unique_ptr<Transaction> txn;
    bool has_writes = false;
  };

  Ts snapshot() const override {
    // The coordinator (shard 0) snapshot; per-shard snapshots are only
    // loosely aligned (atomicity comes from 2PC, not a global TSO).
    if (legs_[0].txn != nullptr) return legs_[0].txn->snapshot();
    return Manager(0)->oracle()->last_committed();
  }

  IsolationLevel isolation() const override { return isolation_; }

  Status Read(TableId table_id, Rid rid, Row* out, WorkMeter* meter) override {
    switch (Placement(table_id).placement) {
      case Placement::kHashed: {
        const uint32_t shard = RidShard(rid);
        return Manager(shard)->Read(Txn(shard), table_id, LocalRid(rid), out,
                                    meter);
      }
      case Placement::kBroadcast:
        return Manager(0)->Read(Txn(0), table_id, rid, out, meter);
      case Placement::kSingleShard: {
        const uint32_t owner = Owner(table_id);
        return Manager(owner)->Read(Txn(owner), table_id, LocalRid(rid), out,
                                    meter);
      }
    }
    return Status::Internal("unreachable placement");
  }

  size_t IndexLookup(const IndexInfo& index,
                     const std::vector<Value>& key_values,
                     const std::function<bool(Rid, const Row&)>& visitor,
                     WorkMeter* meter) override {
    const TableId table_id = index.table_id;
    const TablePlacement& placement = Placement(table_id);
    switch (placement.placement) {
      case Placement::kHashed:
        // Lookup by the distribution key routes to exactly one shard;
        // any other key scatters across all of them.
        if (index.key_columns.size() == 1 && key_values.size() == 1 &&
            index.key_columns[0] == placement.hash_column) {
          const uint32_t shard = engine_->router_->ShardForValue(key_values[0]);
          return LookupOn(shard, index, key_values, visitor, meter);
        }
        {
          size_t matches = 0;
          bool stopped = false;
          for (uint32_t shard = 0; shard < legs_.size() && !stopped; ++shard) {
            matches += LookupOn(
                shard, index, key_values,
                [&](Rid rid, const Row& row) {
                  if (!visitor(rid, row)) {
                    stopped = true;
                    return false;
                  }
                  return true;
                },
                meter);
          }
          return matches;
        }
      case Placement::kBroadcast:
        return LookupOn(0, index, key_values, visitor, meter);
      case Placement::kSingleShard:
        return LookupOn(Owner(table_id), index, key_values, visitor, meter);
    }
    return 0;
  }

  Rid BufferInsert(TableId table_id, Row row) override {
    switch (Placement(table_id).placement) {
      case Placement::kHashed: {
        const uint32_t shard = engine_->router_->ShardForRow(table_id, row);
        Leg& leg = LegFor(shard);
        leg.has_writes = true;
        const Rid provisional =
            Manager(shard)->BufferInsert(leg.txn.get(), table_id,
                                         std::move(row));
        return GlobalRid(shard, provisional);
      }
      case Placement::kBroadcast: {
        // All copies take the insert; read-back goes through shard 0's
        // provisional rid (broadcast reads route to shard 0).
        Rid first = 0;
        for (uint32_t shard = 0; shard < legs_.size(); ++shard) {
          Leg& leg = LegFor(shard);
          leg.has_writes = true;
          const Rid provisional =
              Manager(shard)->BufferInsert(leg.txn.get(), table_id, row);
          if (shard == 0) first = provisional;
        }
        return first;
      }
      case Placement::kSingleShard: {
        const uint32_t owner = Owner(table_id);
        Leg& leg = LegFor(owner);
        leg.has_writes = true;
        const Rid provisional = Manager(owner)->BufferInsert(
            leg.txn.get(), table_id, std::move(row));
        return GlobalRid(owner, provisional);
      }
    }
    return 0;
  }

  void BufferUpdate(TableId table_id, Rid rid, Row old_row,
                    Row new_row) override {
    switch (Placement(table_id).placement) {
      case Placement::kHashed: {
        const uint32_t shard = RidShard(rid);
        Leg& leg = LegFor(shard);
        leg.has_writes = true;
        Manager(shard)->BufferUpdate(leg.txn.get(), table_id, LocalRid(rid),
                                     std::move(old_row), std::move(new_row));
        return;
      }
      case Placement::kBroadcast:
        // Loaded broadcast rows carry identical rids on every shard (the
        // workload never inserts into broadcast tables).
        for (uint32_t shard = 0; shard < legs_.size(); ++shard) {
          Leg& leg = LegFor(shard);
          leg.has_writes = true;
          Manager(shard)->BufferUpdate(leg.txn.get(), table_id, rid, old_row,
                                       new_row);
        }
        return;
      case Placement::kSingleShard: {
        const uint32_t owner = Owner(table_id);
        Leg& leg = LegFor(owner);
        leg.has_writes = true;
        Manager(owner)->BufferUpdate(leg.txn.get(), table_id, LocalRid(rid),
                                     std::move(old_row), std::move(new_row));
        return;
      }
    }
  }

  void BufferDelta(TableId table_id, Rid rid, uint32_t column,
                   Value increment) override {
    switch (Placement(table_id).placement) {
      case Placement::kHashed: {
        const uint32_t shard = RidShard(rid);
        Leg& leg = LegFor(shard);
        leg.has_writes = true;
        Manager(shard)->BufferDelta(leg.txn.get(), table_id, LocalRid(rid),
                                    column, std::move(increment));
        return;
      }
      case Placement::kBroadcast:
        for (uint32_t shard = 0; shard < legs_.size(); ++shard) {
          Leg& leg = LegFor(shard);
          leg.has_writes = true;
          Manager(shard)->BufferDelta(leg.txn.get(), table_id, rid, column,
                                      increment);
        }
        return;
      case Placement::kSingleShard: {
        const uint32_t owner = Owner(table_id);
        Leg& leg = LegFor(owner);
        leg.has_writes = true;
        Manager(owner)->BufferDelta(leg.txn.get(), table_id, LocalRid(rid),
                                    column, std::move(increment));
        return;
      }
    }
  }

  void ScanVisible(TableId table_id,
                   const std::function<bool(Rid, const Row&)>& visitor,
                   WorkMeter* meter) override {
    switch (Placement(table_id).placement) {
      case Placement::kHashed: {
        bool stopped = false;
        for (uint32_t shard = 0; shard < legs_.size() && !stopped; ++shard) {
          ScanOn(shard, table_id,
                 [&](Rid rid, const Row& row) {
                   if (!visitor(GlobalRid(shard, rid), row)) {
                     stopped = true;
                     return false;
                   }
                   return true;
                 },
                 meter);
        }
        return;
      }
      case Placement::kBroadcast:
        ScanOn(0, table_id, visitor, meter);
        return;
      case Placement::kSingleShard: {
        const uint32_t owner = Owner(table_id);
        ScanOn(owner, table_id,
               [&](Rid rid, const Row& row) {
                 return visitor(GlobalRid(owner, rid), row);
               },
               meter);
        return;
      }
    }
  }

  void AbortAll() {
    for (uint32_t shard = 0; shard < legs_.size(); ++shard) {
      if (legs_[shard].txn != nullptr) {
        Manager(shard)->Abort(legs_[shard].txn.get());
      }
    }
  }

  std::vector<Leg>& legs() { return legs_; }

 private:
  TxnManager* Manager(uint32_t shard) const {
    return engine_->shards_[shard].engine->txn_manager();
  }

  const TablePlacement& Placement(TableId table_id) const {
    return engine_->router_->PlacementOf(table_id);
  }

  uint32_t Owner(TableId table_id) const {
    return engine_->router_->OwnerShard(table_id);
  }

  Leg& LegFor(uint32_t shard) {
    Leg& leg = legs_[shard];
    if (leg.txn == nullptr) {
      leg.txn = std::make_unique<Transaction>(
          Manager(shard)->Begin(isolation_, client_id_, txn_num_));
    }
    return leg;
  }

  Transaction* Txn(uint32_t shard) { return LegFor(shard).txn.get(); }

  size_t LookupOn(uint32_t shard, const IndexInfo& index,
                  const std::vector<Value>& key_values,
                  const std::function<bool(Rid, const Row&)>& visitor,
                  WorkMeter* meter) {
    // Map the shard-0 index onto this shard's equivalent by name; table
    // ids and index definitions are identical across shards.
    const IndexInfo* local =
        shard == 0 ? &index
                   : engine_->shards_[shard].engine->primary_catalog()->GetIndex(
                         index.name);
    assert(local != nullptr);
    return Manager(shard)->IndexLookup(
        Txn(shard), *local, key_values,
        [&](Rid rid, const Row& row) {
          return visitor(GlobalRid(shard, rid), row);
        },
        meter);
  }

  void ScanOn(uint32_t shard, TableId table_id,
              const std::function<bool(Rid, const Row&)>& visitor,
              WorkMeter* meter) {
    LocalTxnContext local(Manager(shard), Txn(shard));
    local.ScanVisible(table_id, visitor, meter);
  }

  ShardedEngine* engine_;
  IsolationLevel isolation_;
  uint32_t client_id_;
  uint64_t txn_num_;
  std::vector<Leg> legs_;
};

ShardedEngine::ShardedEngine(ShardedEngineConfig config)
    : config_(std::move(config)) {
  assert(config_.shards >= 1);
}

ShardedEngine::~ShardedEngine() = default;

Status ShardedEngine::Create(const DatabaseSpec& spec) {
  if (created_) return Status::Internal("Create called twice");
  spec_ = spec;
  router_ = std::make_unique<ShardRouter>(config_.shards, config_.seed,
                                          config_.plan);
  shards_.resize(config_.shards);
  for (uint32_t i = 0; i < config_.shards; ++i) {
    Shard& shard = shards_[i];
    HybridEngineConfig node = config_.node;
    node.name = config_.name + "/shard" + std::to_string(i);
    shard.engine = MakeHybridEngine(std::move(node));
    HATTRICK_RETURN_IF_ERROR(shard.engine->Create(spec));
    if (config_.replicate) {
      shard.standby = std::make_unique<Catalog>();
      BuildCatalog(spec, /*with_indexes=*/true, shard.standby.get());
      shard.standby_snapshot = std::make_unique<Catalog>();
      BuildCatalog(spec, /*with_indexes=*/false, shard.standby_snapshot.get());
      shard.stream = std::make_unique<WalStream>();
      shard.replica =
          std::make_unique<Replica>(shard.standby.get(), shard.stream.get());
      if (config_.fault.enabled) {
        // Mix the shard index into the seed: shards fail independently
        // but each schedule stays seed-deterministic.
        FaultConfig per_shard = config_.fault;
        per_shard.seed =
            config_.fault.seed ^
            (0x9e3779b97f4a7c15ull * static_cast<uint64_t>(i + 1));
        shard.injector = std::make_unique<FaultInjector>(per_shard);
        shard.stream->SetFaultInjector(shard.injector.get());
        shard.replica->SetFaultInjector(shard.injector.get());
      }
      TxnManager* manager = shard.engine->txn_manager();
      shard.tee =
          std::make_unique<TeeSink>(manager->sink(), shard.stream.get());
      manager->set_sink(shard.tee.get());
    }
  }
  router_->Bind(*shards_[0].engine->primary_catalog());
  created_ = true;
  return Status::OK();
}

Status ShardedEngine::BulkLoad(const std::string& table,
                               const std::vector<Row>& rows) {
  if (!created_) return Status::Internal("Create not called");
  if (loaded_) return Status::Internal("load already finished");
  const TableId table_id =
      shards_[0].engine->primary_catalog()->GetTableId(table);
  const TablePlacement& placement = router_->PlacementOf(table_id);
  auto load_shard = [&](uint32_t shard, const std::vector<Row>& part) {
    HATTRICK_RETURN_IF_ERROR(shards_[shard].engine->BulkLoad(table, part));
    if (config_.replicate) {
      HATTRICK_RETURN_IF_ERROR(
          BulkLoadInto(shards_[shard].standby.get(), table, part));
    }
    return Status::OK();
  };
  switch (placement.placement) {
    case Placement::kHashed: {
      std::vector<std::vector<Row>> parts(config_.shards);
      for (const Row& row : rows) {
        parts[router_->ShardForRow(table_id, row)].push_back(row);
      }
      for (uint32_t shard = 0; shard < config_.shards; ++shard) {
        HATTRICK_RETURN_IF_ERROR(load_shard(shard, parts[shard]));
      }
      return Status::OK();
    }
    case Placement::kBroadcast:
      for (uint32_t shard = 0; shard < config_.shards; ++shard) {
        HATTRICK_RETURN_IF_ERROR(load_shard(shard, rows));
      }
      return Status::OK();
    case Placement::kSingleShard:
      return load_shard(router_->OwnerShard(table_id), rows);
  }
  return Status::Internal("unreachable placement");
}

Status ShardedEngine::FinishLoad() {
  if (loaded_) return Status::Internal("load already finished");
  for (Shard& shard : shards_) {
    HATTRICK_RETURN_IF_ERROR(shard.engine->FinishLoad());
    if (config_.replicate) {
      shard.standby_snapshot->CopyContentsFrom(*shard.standby);
      shard.replica->ResetTo(/*lsn=*/0, /*ts=*/1);
    }
  }
  loaded_ = true;
  return Status::OK();
}

TxnOutcome ShardedEngine::ExecuteTransaction(const TxnBody& body,
                                             uint32_t client_id,
                                             uint64_t txn_num,
                                             WorkMeter* meter) {
  if (config_.shards == 1) {
    // Bit-identical single-node fast path: no routing, no 2PC.
    return shards_[0].engine->ExecuteTransaction(body, client_id, txn_num,
                                                 meter);
  }
  TxnOutcome outcome;
  Status last = Status::Internal("not run");
  for (int attempt = 0; attempt <= config_.max_retries; ++attempt) {
    if (attempt > 0) {
      outcome.backoff_s +=
          TxnManager::RetryBackoffSeconds(client_id, txn_num, attempt - 1);
    }
    outcome.attempts = attempt + 1;
    ShardedTxnContext ctx(this, config_.node.isolation, client_id, txn_num);
    const Status body_status = body(&ctx, meter);
    if (!body_status.ok()) {
      ctx.AbortAll();
      if (body_status.code() == StatusCode::kAborted) {
        last = body_status;
        continue;
      }
      outcome.status = body_status;
      return outcome;
    }
    const Status commit_status =
        CommitRouted(&ctx, client_id, txn_num, meter, &outcome);
    if (commit_status.ok()) {
      outcome.status = Status::OK();
      return outcome;
    }
    if (commit_status.code() != StatusCode::kAborted) {
      // Injected coordinator crash (or hard error): not retryable.
      outcome.status = commit_status;
      return outcome;
    }
    last = commit_status;
  }
  outcome.status = last;
  return outcome;
}

Status ShardedEngine::CommitRouted(ShardedTxnContext* ctx, uint32_t client_id,
                                   uint64_t txn_num, WorkMeter* meter,
                                   TxnOutcome* outcome) {
  (void)txn_num;
  // Per-shard 2PC child spans land on the issuing client's track, so
  // they nest under the driver's transaction span in the trace.
  const uint32_t track = client_id >= 1
                             ? obs::kTrackTClientBase + (client_id - 1)
                             : obs::kTrackEngine;
  outcome->commit_ts = 0;
  outcome->lsn = 0;
  outcome->wait = CommitWait{};
  outcome->write_keys.clear();
  outcome->delta_keys.clear();
  const uint64_t bytes_before = meter != nullptr ? meter->wal_bytes : 0;

  std::vector<Participant> participants;
  for (uint32_t shard = 0; shard < config_.shards; ++shard) {
    ShardedTxnContext::Leg& leg = ctx->legs()[shard];
    if (leg.txn == nullptr) continue;
    Participant p;
    p.shard = shard;
    p.txn = std::move(leg.txn);
    p.has_writes = leg.has_writes;
    participants.push_back(std::move(p));
  }
  if (participants.empty()) {
    outcome->shards_touched = 1;
    return Status::OK();
  }

  auto fold_result = [&](uint32_t shard, const CommitResult& result) {
    outcome->commit_ts = std::max(outcome->commit_ts, result.commit_ts);
    outcome->lsn = std::max(outcome->lsn, result.lsn);
    for (const uint64_t key : result.write_keys) {
      outcome->write_keys.push_back(ShardLockKey(shard, key));
    }
    for (const uint64_t key : result.delta_keys) {
      outcome->delta_keys.push_back(ShardLockKey(shard, key));
    }
  };

  outcome->shards_touched = static_cast<int>(participants.size());

  if (participants.size() == 1) {
    Participant& p = participants[0];
    TxnManager* manager = shards_[p.shard].engine->txn_manager();
    StatusOr<CommitResult> result = manager->Commit(p.txn.get(), meter);
    if (!result.ok()) return result.status();
    fold_result(p.shard, result.value());
    if (outcome->lsn != 0) {
      outcome->wait = CommitWaitFor(
          outcome->lsn,
          meter != nullptr ? meter->wal_bytes - bytes_before : 0);
    }
    return Status::OK();
  }

  // Two-phase commit. Participants prepare and publish in ascending
  // shard order; a prepared participant never blocks in its shard's
  // commit tail, and the fixed publish order makes any coordinator wait
  // chain strictly descend the shard index — so 2PC cannot deadlock.
  const uint64_t gtid = next_gtid_.fetch_add(1, std::memory_order_relaxed);
  std::vector<uint32_t> shard_ids;
  shard_ids.reserve(participants.size());
  for (const Participant& p : participants) shard_ids.push_back(p.shard);

  for (uint32_t k = 0; k < participants.size(); ++k) {
    if (ShouldCrash(TwoPcCrash::Point::kMidPrepare, k)) {
      ParkCrashed(gtid, std::move(participants), /*decided=*/false,
                  /*commit=*/false);
      return Status::Internal("2pc coordinator crash (injected): mid-prepare");
    }
    Participant& p = participants[k];
    TxnManager* manager = shards_[p.shard].engine->txn_manager();
    obs::ScopedSpan span(obs_.tracer, obs_.clock, "2pc-prepare", "shard",
                         track);
    span.AppendArgs("\"gtid\":" + std::to_string(gtid) +
                    ",\"shard\":" + std::to_string(p.shard));
    const Status prepared =
        manager->Prepare(p.txn.get(), &p.prepared, meter);
    if (prepares_metric_ != nullptr) prepares_metric_->Inc();
    if (!prepared.ok()) {
      // Roll back everyone already prepared; participant k is already
      // rolled back by the failed Prepare itself.
      for (uint32_t j = 0; j < k; ++j) {
        Participant& q = participants[j];
        shards_[q.shard].engine->txn_manager()->AbortPrepared(q.txn.get(),
                                                              &q.prepared);
      }
      if (aborts_2pc_metric_ != nullptr) aborts_2pc_metric_->Inc();
      return prepared;
    }
  }

  TwoPcRecord prepare_record;
  prepare_record.kind = TwoPcRecord::Kind::kPrepare;
  prepare_record.gtid = gtid;
  prepare_record.participants = shard_ids;
  two_pc_log_.Append(prepare_record);
  if (ShouldCrash(TwoPcCrash::Point::kAfterPrepareLog, 0)) {
    ParkCrashed(gtid, std::move(participants), /*decided=*/false,
                /*commit=*/false);
    return Status::Internal("2pc coordinator crash (injected): after prepare");
  }

  TwoPcRecord decide_record;
  decide_record.kind = TwoPcRecord::Kind::kDecide;
  decide_record.gtid = gtid;
  decide_record.participants = shard_ids;
  decide_record.commit = true;
  two_pc_log_.Append(decide_record);
  if (ShouldCrash(TwoPcCrash::Point::kAfterDecideLog, 0)) {
    ParkCrashed(gtid, std::move(participants), /*decided=*/true,
                /*commit=*/true);
    return Status::Internal("2pc coordinator crash (injected): after decide");
  }

  for (uint32_t k = 0; k < participants.size(); ++k) {
    if (ShouldCrash(TwoPcCrash::Point::kMidCommit, k)) {
      ParkCrashed(gtid, std::move(participants), /*decided=*/true,
                  /*commit=*/true);
      return Status::Internal("2pc coordinator crash (injected): mid-commit");
    }
    Participant& p = participants[k];
    TxnManager* manager = shards_[p.shard].engine->txn_manager();
    obs::ScopedSpan span(obs_.tracer, obs_.clock, "2pc-publish", "shard",
                         track);
    span.AppendArgs("\"gtid\":" + std::to_string(gtid) +
                    ",\"shard\":" + std::to_string(p.shard));
    const CommitResult result =
        manager->CommitPrepared(p.txn.get(), &p.prepared, meter);
    p.done = true;
    fold_result(p.shard, result);
  }
  if (commits_2pc_metric_ != nullptr) commits_2pc_metric_->Inc();
  if (obs_.tracer != nullptr && obs_.clock != nullptr) {
    obs_.tracer->Instant(
        "2pc-commit", "shard", obs::kTrackEngine, obs_.clock->Now(),
        "\"gtid\":" + std::to_string(gtid) +
            ",\"participants\":" + std::to_string(participants.size()));
  }
  if (outcome->lsn != 0) {
    outcome->wait = CommitWaitFor(
        outcome->lsn, meter != nullptr ? meter->wal_bytes - bytes_before : 0);
  }
  return Status::OK();
}

void ShardedEngine::SetTwoPcCrash(TwoPcCrash crash) {
  MutexLock lock(&crash_mu_);
  armed_crash_ = crash;
}

bool ShardedEngine::ShouldCrash(TwoPcCrash::Point point, uint32_t k) {
  MutexLock lock(&crash_mu_);
  if (armed_crash_.point != point) return false;
  const bool mid = point == TwoPcCrash::Point::kMidPrepare ||
                   point == TwoPcCrash::Point::kMidCommit;
  if (mid && armed_crash_.after_k != k) return false;
  armed_crash_ = TwoPcCrash{};  // one-shot
  return true;
}

void ShardedEngine::ParkCrashed(uint64_t gtid,
                                std::vector<Participant> participants,
                                bool decided, bool commit) {
  MutexLock lock(&pending_mu_);
  PendingGlobalTxn pending;
  pending.gtid = gtid;
  pending.participants = std::move(participants);
  pending.decided = decided;
  pending.commit = commit;
  pending_.emplace(gtid, std::move(pending));
}

size_t ShardedEngine::RecoverCoordinator() {
  MutexLock lock(&pending_mu_);
  if (pending_.empty()) return 0;
  // The coordinator log is the source of truth: a logged decision is
  // replayed; without one the transaction is presumed aborted.
  std::map<uint64_t, bool> decisions;
  for (const TwoPcRecord& record : two_pc_log_.Records()) {
    if (record.kind == TwoPcRecord::Kind::kDecide) {
      decisions[record.gtid] = record.commit;
    }
  }
  size_t recovered = 0;
  for (auto& [gtid, pending] : pending_) {
    const auto decision = decisions.find(gtid);
    const bool commit = decision != decisions.end() && decision->second;
    for (Participant& p : pending.participants) {
      if (p.done) continue;
      TxnManager* manager = shards_[p.shard].engine->txn_manager();
      if (commit) {
        manager->CommitPrepared(p.txn.get(), &p.prepared, /*meter=*/nullptr);
      } else {
        // Never-prepared participants (mid-prepare crash) have nothing
        // installed and no slot; AbortPrepared degrades to a no-op.
        manager->AbortPrepared(p.txn.get(), &p.prepared);
      }
      p.done = true;
    }
    if (recoveries_metric_ != nullptr) recoveries_metric_->Inc();
    ++recovered;
  }
  pending_.clear();
  return recovered;
}

size_t ShardedEngine::PendingGlobalTxns() const {
  MutexLock lock(&pending_mu_);
  return pending_.size();
}

AnalyticsSession ShardedEngine::BeginAnalytics(WorkMeter* meter) {
  if (config_.shards == 1) {
    return shards_[0].engine->BeginAnalytics(meter);
  }
  std::vector<AnalyticsSession> sessions;
  sessions.reserve(config_.shards);
  for (Shard& shard : shards_) {
    sessions.push_back(shard.engine->BeginAnalytics(meter));
  }
  auto guards = std::make_shared<SessionGuards>();
  guards->pins.reserve(sessions.size());
  for (const AnalyticsSession& inner : sessions) {
    guards->pins.push_back(inner.guard);
  }
  AnalyticsSession session;
  session.snapshot = sessions[0].snapshot;
  session.source = std::make_unique<ShardedDataSource>(
      std::move(sessions), router_.get(),
      shards_[0].engine->primary_catalog(), config_.fact_table);
  session.guard = std::move(guards);
  return session;
}

bool ShardedEngine::MaintenanceStep(WorkMeter* meter) {
  // Replication first: advance the furthest-behind healthy standby.
  if (config_.replicate) {
    Shard* laggard = nullptr;
    for (Shard& shard : shards_) {
      if (!shard.replica->last_error().ok()) continue;
      if (shard.replica->Lag() == 0) continue;
      if (laggard == nullptr ||
          shard.replica->applied_lsn() < laggard->replica->applied_lsn()) {
        laggard = &shard;
      }
    }
    if (laggard != nullptr) {
      switch (laggard->replica->Step(meter)) {
        case Replica::StepResult::kApplied:
        case Replica::StepResult::kDuplicateSkipped:
        case Replica::StepResult::kResendRequested:
        case Replica::StepResult::kRecovered:
          return true;
        case Replica::StepResult::kError:
        case Replica::StepResult::kBackingOff:
        case Replica::StepResult::kIdle:
          break;
      }
    }
  }
  // Then the inner engines' own maintenance (bitmap-mode folds).
  for (Shard& shard : shards_) {
    if (shard.engine->MaintenanceStep(meter)) return true;
  }
  return false;
}

size_t ShardedEngine::MaintenancePending() const {
  size_t pending = 0;
  for (const Shard& shard : shards_) {
    pending += shard.engine->MaintenancePending();
    if (config_.replicate && shard.replica->last_error().ok()) {
      pending += shard.replica->Lag();
    }
  }
  return pending;
}

double ShardedEngine::BackpressureThrottle() const {
  if (!config_.replicate) return 0;
  size_t backlog = 0;
  for (const Shard& shard : shards_) {
    backlog = std::max(backlog, shard.stream->RetainedRecords());
  }
  if (backlog <= config_.max_backlog_records) return 0;
  const double excess =
      static_cast<double>(backlog - config_.max_backlog_records);
  return std::min(config_.backpressure_stall_cap_s,
                  config_.backpressure_stall_s * excess);
}

CommitWait ShardedEngine::CommitWaitFor(uint64_t lsn, uint64_t wal_bytes) {
  // Replication is an asynchronous learner tail: commits never wait for
  // shipping or apply, only for backpressure once a shard's standby
  // backlog grows too deep (plus any injected ship-delay fault).
  (void)wal_bytes;
  CommitWait wait;
  double throttle = BackpressureThrottle();
  for (const Shard& shard : shards_) {
    if (shard.injector != nullptr) {
      throttle = std::max(throttle, shard.injector->ShipDelaySeconds(lsn));
    }
  }
  wait.throttle_s = throttle;
  return wait;
}

size_t ShardedEngine::Vacuum() {
  size_t dropped = 0;
  for (Shard& shard : shards_) {
    dropped += shard.engine->Vacuum();
    if (config_.replicate) {
      dropped += shard.standby->VacuumAll(shard.replica->Snapshot());
    }
  }
  return dropped;
}

Status ShardedEngine::Reset() {
  if (!loaded_) return Status::Internal("FinishLoad not called");
  // Drain any parked distributed transactions first: their reserved
  // commit slots would stall the inner engines' ordered tails forever.
  RecoverCoordinator();
  for (Shard& shard : shards_) {
    HATTRICK_RETURN_IF_ERROR(shard.engine->Reset());
    if (config_.replicate) {
      shard.standby->CopyContentsFrom(*shard.standby_snapshot);
      shard.stream->Reset();
      shard.replica->ResetTo(/*lsn=*/0, /*ts=*/1);
    }
  }
  two_pc_log_.Reset();
  next_gtid_.store(1, std::memory_order_relaxed);
  return Status::OK();
}

void ShardedEngine::OnObservabilityChanged() {
  // Every inner engine gets the same bundle (its manager metrics, merge
  // counters, index split counters). Shard 0's manager was already wired
  // by the base class; re-wiring is idempotent.
  for (Shard& shard : shards_) {
    shard.engine->SetObservability(obs_);
  }
  if (obs_.metrics == nullptr) {
    prepares_metric_ = commits_2pc_metric_ = aborts_2pc_metric_ =
        recoveries_metric_ = nullptr;
    return;
  }
  prepares_metric_ = obs_.metrics->GetCounter(obs::kShard2pcPrepares);
  commits_2pc_metric_ = obs_.metrics->GetCounter(obs::kShard2pcCommits);
  aborts_2pc_metric_ = obs_.metrics->GetCounter(obs::kShard2pcAborts);
  recoveries_metric_ =
      obs_.metrics->GetCounter(obs::kShard2pcCoordinatorRecoveries);
  for (uint32_t i = 0; i < config_.shards; ++i) {
    Shard* shard = &shards_[i];
    obs_.metrics
        ->GetGauge(std::string(obs::kShardBacklogPrefix) + std::to_string(i))
        ->SetProbe([this, shard] {
          if (config_.replicate) {
            return static_cast<double>(shard->stream->RetainedRecords());
          }
          return static_cast<double>(shard->engine->MaintenancePending());
        });
  }
}

}  // namespace hattrick
