#ifndef HATTRICK_SHARD_SHARDED_ENGINE_H_
#define HATTRICK_SHARD_SHARDED_ENGINE_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "engine/engine_config.h"
#include "engine/htap_engine.h"
#include "fault/fault_injector.h"
#include "replication/replica.h"
#include "replication/wal_stream.h"
#include "shard/shard_router.h"
#include "shard/two_pc.h"
#include "txn/txn_context.h"

namespace hattrick {

/// Configuration of the sharded scale-out engine.
struct ShardedEngineConfig {
  std::string name = "sharded";
  /// Number of shard nodes (>= 1). 1 degenerates to the inner engine:
  /// every call delegates straight to shard 0, so results, rids, and
  /// metered work are bit-identical to an unsharded deployment.
  uint32_t shards = 3;
  /// Router seed (routing is a pure function of seed + key bytes).
  uint64_t seed = 42;
  /// Table placement; tables absent from the plan are broadcast.
  ShardPlan plan;
  /// The hash-partitioned fact table that scatter/gather analytics
  /// partition by: per-shard subplans scan it locally and scan every
  /// other hashed table across all shards (join partners are not
  /// necessarily co-located with the fact partition).
  std::string fact_table = "LINEORDER";
  /// Each shard node is one hybrid (row + column copy) engine.
  HybridEngineConfig node;
  int max_retries = 50;
  /// Per-shard replication chain (WAL stream -> row-store standby),
  /// pumped by MaintenanceStep. Replication is asynchronous — a learner
  /// tail like TiFlash's: it never gates commit visibility, only
  /// backpressures commits once a standby's backlog grows too deep.
  bool replicate = true;
  /// Replication-layer fault injection (per-shard injectors with mixed
  /// seeds, as in IsolatedEngineConfig).
  FaultConfig fault;
  size_t max_backlog_records = 4096;
  double backpressure_stall_s = 20e-6;
  double backpressure_stall_cap_s = 5e-3;
};

/// Coordinator crash injection for 2PC chaos tests: the next multi-shard
/// commit stops dead at `point` (after `after_k` per-participant steps
/// for the mid-phase points), leaving its prepared state parked until
/// RecoverCoordinator() runs. One-shot.
struct TwoPcCrash {
  enum class Point {
    kNone,
    kMidPrepare,       // after preparing after_k participants
    kAfterPrepareLog,  // all prepared, kPrepare logged, no decision
    kAfterDecideLog,   // kDecide(commit) logged, nothing published
    kMidCommit,        // after publishing on after_k participants
  };
  Point point = Point::kNone;
  uint32_t after_k = 0;
};

/// Horizontal scale-out behind the single-node facade: N hybrid engines
/// (one per shard), a deterministic hash router over the table placement
/// plan, two-phase commit for cross-shard transactions, per-shard
/// asynchronous replication chains, and scatter/gather analytics via
/// per-shard session views (DataSource::ShardViews).
///
/// Transactions run against a routed TxnContext: each operation lands on
/// the shard(s) its placement dictates, and commit runs 1PC when a
/// single shard was touched, else 2PC — prepare every participant
/// (install + validate, never blocking in the commit tail), log the
/// decision in the coordinator log, then publish in ascending shard
/// order. Publishing in a fixed shard order makes coordinator deadlock
/// impossible: any wait chain strictly descends the shard index.
///
/// Snapshot semantics: per-shard snapshots, aligned only by 2PC
/// atomicity (TiDB-without-TSO). TxnContext::snapshot() reports the
/// coordinator (shard 0) snapshot.
class ShardedEngine final : public HtapEngine {
 public:
  explicit ShardedEngine(ShardedEngineConfig config = {});
  ~ShardedEngine() override;

  const std::string& name() const override { return config_.name; }
  Status Create(const DatabaseSpec& spec) override;
  Status BulkLoad(const std::string& table,
                  const std::vector<Row>& rows) override;
  Status FinishLoad() override;
  TxnOutcome ExecuteTransaction(const TxnBody& body, uint32_t client_id,
                                uint64_t txn_num, WorkMeter* meter) override;
  AnalyticsSession BeginAnalytics(WorkMeter* meter) override;
  bool MaintenanceStep(WorkMeter* meter) override;
  size_t MaintenancePending() const override;
  CommitWait CommitWaitFor(uint64_t lsn, uint64_t wal_bytes) override;
  size_t Vacuum() override;
  Status Reset() override;
  Catalog* primary_catalog() override {
    return shards_[0].engine->primary_catalog();
  }
  TxnManager* txn_manager() override { return shards_[0].engine->txn_manager(); }

  uint32_t num_shards() const { return config_.shards; }
  const ShardRouter& router() const { return *router_; }
  HtapEngine* shard_engine(uint32_t shard) {
    return shards_[shard].engine.get();
  }
  Replica* shard_replica(uint32_t shard) {
    return shards_[shard].replica.get();
  }
  const WalStream* shard_stream(uint32_t shard) const {
    return shards_[shard].stream.get();
  }
  const TwoPcLog& two_pc_log() const { return two_pc_log_; }

  /// Arms a one-shot coordinator crash (tests). The crashed commit
  /// returns a non-retryable Internal status and its prepared state
  /// stays parked; RecoverCoordinator() finishes it.
  void SetTwoPcCrash(TwoPcCrash crash);

  /// Coordinator crash recovery: replays the coordinator log decision
  /// for every parked distributed transaction — commit if a kDecide
  /// record exists, else presumed abort. Returns transactions recovered.
  size_t RecoverCoordinator();

  /// Distributed transactions currently parked (crashed coordinators).
  size_t PendingGlobalTxns() const;

 protected:
  void OnObservabilityChanged() override;

 private:
  friend class ShardedTxnContext;

  /// One shard node: the inner engine plus its replication chain.
  struct Shard {
    std::unique_ptr<HtapEngine> engine;
    // Replication chain (null when !config_.replicate).
    std::unique_ptr<Catalog> standby;           // row-store replica catalog
    std::unique_ptr<Catalog> standby_snapshot;  // post-load state for Reset
    std::unique_ptr<WalStream> stream;
    std::unique_ptr<Replica> replica;
    std::unique_ptr<FaultInjector> injector;
    std::unique_ptr<WalSink> tee;  // inner sink + stream fan-out
  };

  /// Per-participant state of one distributed commit.
  struct Participant {
    uint32_t shard = 0;
    std::unique_ptr<Transaction> txn;
    TxnManager::Prepared prepared;
    bool has_writes = false;
    bool done = false;  // published (or rolled back)
  };

  /// A distributed transaction whose coordinator crashed mid-commit.
  struct PendingGlobalTxn {
    uint64_t gtid = 0;
    std::vector<Participant> participants;
    bool decided = false;
    bool commit = false;
  };

  /// Runs one commit attempt for the routed context. Returns kAborted on
  /// conflict (retryable), Internal on injected coordinator crash.
  Status CommitRouted(class ShardedTxnContext* ctx, uint32_t client_id,
                      uint64_t txn_num, WorkMeter* meter, TxnOutcome* outcome);

  /// True (and consumes the armed crash) when the current commit should
  /// stop at `point` with `k` per-participant steps done.
  bool ShouldCrash(TwoPcCrash::Point point, uint32_t k);

  void ParkCrashed(uint64_t gtid, std::vector<Participant> participants,
                   bool decided, bool commit);

  double BackpressureThrottle() const;

  ShardedEngineConfig config_;
  DatabaseSpec spec_;
  std::vector<Shard> shards_;
  std::unique_ptr<ShardRouter> router_;
  TwoPcLog two_pc_log_;
  std::atomic<uint64_t> next_gtid_{1};

  mutable Mutex pending_mu_;
  std::map<uint64_t, PendingGlobalTxn> pending_ GUARDED_BY(pending_mu_);

  mutable Mutex crash_mu_;
  TwoPcCrash armed_crash_ GUARDED_BY(crash_mu_);

  obs::Counter* prepares_metric_ = nullptr;
  obs::Counter* commits_2pc_metric_ = nullptr;
  obs::Counter* aborts_2pc_metric_ = nullptr;
  obs::Counter* recoveries_metric_ = nullptr;

  bool created_ = false;
  bool loaded_ = false;
};

}  // namespace hattrick

#endif  // HATTRICK_SHARD_SHARDED_ENGINE_H_
