#ifndef HATTRICK_SHARD_TWO_PC_H_
#define HATTRICK_SHARD_TWO_PC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace hattrick {

/// Coordinator-side durable record of a distributed commit. Two kinds:
///
///   kPrepare — written after every participant voted yes, before any
///              decision. Lists the participants so recovery knows whom
///              to contact.
///   kDecide  — the commit/abort decision. Once this exists the outcome
///              is fixed; recovery replays it to any participant that
///              missed it.
///
/// The recovery matrix (tests/fault_test.cc drives every row):
///
///   crash point               | recovery action
///   --------------------------+------------------------------------
///   before kPrepare logged    | abort all prepared participants
///   after kPrepare, no kDecide| abort (presumed abort)
///   after kDecide(commit)     | commit remaining participants
///   after kDecide(abort)      | abort remaining participants
struct TwoPcRecord {
  enum class Kind : uint8_t { kPrepare = 0, kDecide = 1 };

  Kind kind = Kind::kPrepare;
  uint64_t gtid = 0;
  std::vector<uint32_t> participants;
  bool commit = false;  // meaningful for kDecide only

  /// Length-prefixed little-endian wire form (mirrors WalRecord's
  /// fixed-width style; the log is its own stream, not WAL records).
  std::string Encode() const;
  static bool Decode(const std::string& bytes, TwoPcRecord* out);
};

/// Append-only coordinator log, one per sharded engine. Deliberately a
/// separate stream from the per-shard WALs: the coordinator's decision
/// must survive independently of any one participant.
class TwoPcLog {
 public:
  void Append(const TwoPcRecord& record) {
    MutexLock lock(&mu_);
    records_.push_back(record);
  }

  /// Snapshot of all records appended so far, in append order.
  std::vector<TwoPcRecord> Records() const {
    MutexLock lock(&mu_);
    return records_;
  }

  size_t size() const {
    MutexLock lock(&mu_);
    return records_.size();
  }

  void Reset() {
    MutexLock lock(&mu_);
    records_.clear();
  }

 private:
  mutable Mutex mu_;
  std::vector<TwoPcRecord> records_ GUARDED_BY(mu_);
};

}  // namespace hattrick

#endif  // HATTRICK_SHARD_TWO_PC_H_
