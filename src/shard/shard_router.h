#ifndef HATTRICK_SHARD_SHARD_ROUTER_H_
#define HATTRICK_SHARD_SHARD_ROUTER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/value.h"
#include "storage/catalog.h"

namespace hattrick {

/// How one table is distributed across the shard engines.
enum class Placement {
  /// Rows hash-partitioned by one column (the distribution key). Reads
  /// and writes of a row route to the shard its key hashes to.
  kHashed,
  /// Full copy on every shard (small dimension tables). Reads go to any
  /// one shard; writes apply to all shards.
  kBroadcast,
  /// All rows on one shard, chosen by hashing the table name (tiny
  /// single-row tables like FRESHNESS_j, where broadcasting would turn
  /// every T transaction into an all-shard write).
  kSingleShard,
};

/// Returns "hashed" / "broadcast" / "single".
const char* PlacementName(Placement placement);

/// Per-table placement rule, keyed by table name in a ShardPlan.
struct TablePlacement {
  Placement placement = Placement::kBroadcast;
  /// Distribution column for kHashed (ignored otherwise).
  size_t hash_column = 0;
};

/// The sharding layout of a database: table name -> placement. Tables
/// absent from the plan default to kBroadcast (safe for read-mostly
/// dimensions; a miss is a correctness-preserving default, never a
/// routing error).
using ShardPlan = std::map<std::string, TablePlacement>;

/// The HATtrick/SSB layout: CUSTOMER and SUPPLIER hashed by their keys,
/// LINEORDER and HISTORY hashed by custkey (co-located with CUSTOMER, so
/// NewOrder/Payment order rows live with their customer), PART and DATE
/// broadcast, FRESHNESS_j single-shard. `num_freshness_tables` names the
/// FRESHNESS_j tables to pin (one per T-client).
ShardPlan MakeSsbShardPlan(uint32_t num_freshness_tables);

/// Rid encoding across shards: bits [44, 63] carry the owning shard,
/// bits [0, 43] the shard-local rid. Shard 0 rids pass through verbatim,
/// so a 1-shard deployment exposes exactly the rids (and write keys) of
/// an unsharded engine. Provisional rids (>= 2^36, txn/txn_manager.h)
/// stay below the shard bits, so an encoded provisional rid still reads
/// as provisional to the owning shard after the local mask.
inline constexpr int kShardRidShift = 44;
inline constexpr Rid kShardLocalRidMask = (Rid{1} << kShardRidShift) - 1;

inline Rid GlobalRid(uint32_t shard, Rid local) {
  return (static_cast<Rid>(shard) << kShardRidShift) | local;
}
inline uint32_t RidShard(Rid global) {
  return static_cast<uint32_t>(global >> kShardRidShift);
}
inline Rid LocalRid(Rid global) { return global & kShardLocalRidMask; }

/// Packs a row identity for the driver's lock-contention ledger so rows
/// on different shards never alias: bits [56, 63] shard, below the
/// (table << 40 | rid) packing of PackRowKey. Shard 0 keys pass through.
inline uint64_t ShardLockKey(uint32_t shard, uint64_t row_key) {
  return (static_cast<uint64_t>(shard) << 56) | row_key;
}

/// Deterministic hash router over a ShardPlan. Routing is a pure
/// function of (seed, key bytes): the same key routes to the same shard
/// in every run and on every node, independent of call order — the
/// property replays, differential tests and recovery all rely on.
class ShardRouter {
 public:
  ShardRouter(uint32_t num_shards, uint64_t seed, ShardPlan plan);

  uint32_t num_shards() const { return num_shards_; }
  uint64_t seed() const { return seed_; }

  /// Resolves placements against `catalog`'s table ids (call after the
  /// schema exists; ids are identical on every shard because tables are
  /// created in spec order).
  void Bind(const Catalog& catalog);

  /// Placement rule for a bound table id.
  const TablePlacement& PlacementOf(TableId table_id) const {
    return placements_[table_id];
  }

  /// Owning shard of a kSingleShard table.
  uint32_t OwnerShard(TableId table_id) const {
    return owners_[table_id];
  }

  /// Shard a distribution-key value hashes to.
  uint32_t ShardForValue(const Value& value) const;

  /// Shard `row` of a kHashed table lives on (hashes the distribution
  /// column). Must not be called for other placements.
  uint32_t ShardForRow(TableId table_id, const Row& row) const;

  /// Owning shard for the table-name hash of kSingleShard placements
  /// (exposed so tests can pin fixtures to known shards).
  uint32_t ShardForName(const std::string& name) const;

 private:
  uint32_t num_shards_;
  uint64_t seed_;
  ShardPlan plan_;
  std::vector<TablePlacement> placements_;  // by TableId, after Bind
  std::vector<uint32_t> owners_;            // by TableId, after Bind
};

}  // namespace hattrick

#endif  // HATTRICK_SHARD_SHARD_ROUTER_H_
