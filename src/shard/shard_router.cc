#include "shard/shard_router.h"

#include <cassert>

#include "common/key_encoding.h"
#include "hattrick/hattrick_schema.h"

namespace hattrick {

namespace {

/// splitmix64 finalizer: the same mixer the txn layer uses for
/// deterministic jitter; good avalanche over the encoded key bytes.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashBytes(uint64_t seed, const std::string& bytes) {
  uint64_t h = Mix64(seed);
  for (const char c : bytes) {
    h = Mix64(h ^ static_cast<uint8_t>(c));
  }
  return h;
}

}  // namespace

const char* PlacementName(Placement placement) {
  switch (placement) {
    case Placement::kHashed:
      return "hashed";
    case Placement::kBroadcast:
      return "broadcast";
    case Placement::kSingleShard:
      return "single";
  }
  return "?";
}

ShardPlan MakeSsbShardPlan(uint32_t num_freshness_tables) {
  ShardPlan plan;
  plan[kCustomer] = {Placement::kHashed, cust::kCustKey};
  plan[kSupplier] = {Placement::kHashed, supp::kSuppKey};
  // Facts co-located with their customer: NewOrder and Payment touch a
  // customer plus that customer's orders, so hashing both by custkey
  // keeps the common transactions single-shard.
  plan[kLineorder] = {Placement::kHashed, lo::kCustKey};
  plan[kHistory] = {Placement::kHashed, hist::kCustKey};
  plan[kPart] = {Placement::kBroadcast, 0};
  plan[kDate] = {Placement::kBroadcast, 0};
  for (uint32_t j = 1; j <= num_freshness_tables; ++j) {
    plan[FreshnessTableName(j)] = {Placement::kSingleShard, 0};
  }
  return plan;
}

ShardRouter::ShardRouter(uint32_t num_shards, uint64_t seed, ShardPlan plan)
    : num_shards_(num_shards), seed_(seed), plan_(std::move(plan)) {
  assert(num_shards_ >= 1);
}

void ShardRouter::Bind(const Catalog& catalog) {
  placements_.assign(catalog.num_tables(), TablePlacement{});
  owners_.assign(catalog.num_tables(), 0);
  for (TableId id = 0; id < catalog.num_tables(); ++id) {
    const std::string& name = catalog.table_name(id);
    const auto it = plan_.find(name);
    if (it != plan_.end()) placements_[id] = it->second;
    if (placements_[id].placement == Placement::kSingleShard) {
      owners_[id] = ShardForName(name);
    }
  }
}

uint32_t ShardRouter::ShardForValue(const Value& value) const {
  std::string bytes;
  key::EncodeValue(value, &bytes);
  return static_cast<uint32_t>(HashBytes(seed_, bytes) % num_shards_);
}

uint32_t ShardRouter::ShardForRow(TableId table_id, const Row& row) const {
  const TablePlacement& placement = placements_[table_id];
  assert(placement.placement == Placement::kHashed);
  return ShardForValue(row[placement.hash_column]);
}

uint32_t ShardRouter::ShardForName(const std::string& name) const {
  return static_cast<uint32_t>(HashBytes(seed_ ^ 0x73686172ULL, name) %
                               num_shards_);
}

}  // namespace hattrick
