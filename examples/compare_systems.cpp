// Compare the three HTAP architecture designs with the HATtrick
// benchmark at one scale factor: build the throughput frontier of each,
// classify its design pattern, check envelopes, and report freshness —
// a miniature of the paper's Figure 12 workflow.
//
// Run: ./build/examples/compare_systems

#include <cstdio>

#include "engine/hybrid_engine.h"
#include "engine/isolated_engine.h"
#include "engine/shared_engine.h"
#include "hattrick/datagen.h"
#include "hattrick/driver.h"
#include "hattrick/frontier.h"
#include "hattrick/report.h"

using namespace hattrick;  // NOLINT: example brevity

namespace {

struct SystemUnderTest {
  std::string name;
  std::unique_ptr<HtapEngine> engine;
  SimSetup setup;
};

}  // namespace

int main() {
  DatagenConfig datagen;
  datagen.scale_factor = 4.0;
  datagen.seed = 42;
  const Dataset dataset = GenerateDataset(datagen);
  std::printf("dataset: %zu lineorders\n\n", dataset.lineorder.size());

  std::vector<SystemUnderTest> systems;
  {
    SystemUnderTest s;
    s.name = "shared (PostgreSQL-like)";
    s.engine = std::make_unique<SharedEngine>();
    s.setup = SharedSimSetup();
    systems.push_back(std::move(s));
  }
  {
    SystemUnderTest s;
    s.name = "isolated (PostgreSQL-SR-like)";
    IsolatedEngineConfig config;
    config.mode = ReplicationMode::kSyncShip;
    s.engine = std::make_unique<IsolatedEngine>(config);
    s.setup = IsolatedSimSetup();
    systems.push_back(std::move(s));
  }
  {
    SystemUnderTest s;
    s.name = "hybrid (System-X-like)";
    s.engine = std::make_unique<HybridEngine>(SystemXConfig());
    s.setup = HybridSimSetup();
    systems.push_back(std::move(s));
  }

  FrontierOptions options;
  options.lines = 4;
  options.points_per_line = 4;
  options.max_clients = 24;
  WorkloadConfig base;
  base.warmup_seconds = 0.2;
  base.measure_seconds = 0.8;

  std::vector<GridGraph> grids;
  std::vector<std::unique_ptr<WorkloadContext>> contexts;
  for (SystemUnderTest& system : systems) {
    const Status status =
        LoadDataset(dataset, PhysicalSchema::kAllIndexes,
                    system.engine.get());
    if (!status.ok()) {
      std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
      return 1;
    }
    contexts.push_back(std::make_unique<WorkloadContext>(dataset));
    SimDriver driver(system.engine.get(), contexts.back().get(),
                     system.setup);
    std::printf("measuring %s ...\n", system.name.c_str());
    GridGraph grid =
        BuildGridGraph(MakeRunner(&driver, base), options);
    PrintFrontierSummary(system.name, grid);
    const auto freshness = MeasureRatioFreshness(MakeRunner(&driver, base),
                                                 grid.tau_max,
                                                 grid.alpha_max);
    PrintRatioFreshness(system.name, freshness);
    grids.push_back(std::move(grid));
  }

  std::vector<std::string> labels;
  std::vector<const GridGraph*> pointers;
  for (size_t i = 0; i < systems.size(); ++i) {
    labels.push_back(systems[i].name);
    pointers.push_back(&grids[i]);
  }
  PlotFrontiers(labels, pointers);

  // The paper's comparison rule (Section 6.6).
  for (size_t i = 0; i < grids.size(); ++i) {
    for (size_t j = 0; j < grids.size(); ++j) {
      if (i != j && Envelops(grids[i], grids[j])) {
        std::printf("%s envelops %s\n", labels[i].c_str(),
                    labels[j].c_str());
      }
    }
  }
  return 0;
}
