// Explore the freshness/performance trade-off of the isolated design:
// run the same T-heavy HATtrick mix under replication modes ASYNC, ON
// and REMOTE_APPLY, and report throughput against the freshness scores —
// the paper's Figure 8a insight in one table.
//
// Run: ./build/examples/freshness_tradeoff

#include <cstdio>

#include "engine/isolated_engine.h"
#include "hattrick/datagen.h"
#include "hattrick/driver.h"

using namespace hattrick;  // NOLINT: example brevity

int main() {
  DatagenConfig datagen;
  datagen.scale_factor = 4.0;
  datagen.seed = 42;
  const Dataset dataset = GenerateDataset(datagen);

  std::printf("replication mode | tps      | qps    | freshness p50/p99 "
              "(s) | txn p99 latency (ms)\n");
  std::printf("-----------------+----------+--------+---------------------"
              "--+---------------------\n");
  for (const ReplicationMode mode :
       {ReplicationMode::kAsync, ReplicationMode::kSyncShip,
        ReplicationMode::kRemoteApply}) {
    IsolatedEngineConfig config;
    config.mode = mode;
    IsolatedEngine engine(config);
    const Status status =
        LoadDataset(dataset, PhysicalSchema::kAllIndexes, &engine);
    if (!status.ok()) {
      std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
      return 1;
    }
    WorkloadContext context(dataset);
    SimDriver driver(&engine, &context, IsolatedSimSetup());

    WorkloadConfig run;
    run.t_clients = 12;  // T-heavy: pressure on the replication channel
    run.a_clients = 3;
    run.warmup_seconds = 0.25;
    run.measure_seconds = 1.5;
    const RunMetrics metrics = driver.Run(run);
    std::printf("%-16s | %8.1f | %6.2f | %9.4f / %9.4f | %8.3f\n",
                ReplicationModeName(mode), metrics.t_throughput,
                metrics.a_throughput,
                metrics.freshness.empty()
                    ? 0.0
                    : metrics.freshness.Percentile(0.5),
                metrics.freshness.empty()
                    ? 0.0
                    : metrics.freshness.Percentile(0.99),
                metrics.txn_latency.empty()
                    ? 0.0
                    : metrics.txn_latency.Percentile(0.99) * 1e3);
  }
  std::printf(
      "\nREMOTE_APPLY buys freshness 0 at the cost of T throughput and\n"
      "latency; ON ships synchronously but replays lazily, so analytics\n"
      "can observe stale snapshots under T-heavy load (paper Section "
      "6.3).\n");
  return 0;
}
