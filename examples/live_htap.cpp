// Wall-clock demonstration: real client threads hammer a hybrid engine
// with the HATtrick mix while analytical threads run the 13 SSB queries
// concurrently — the engines under true concurrency rather than in
// virtual time.
//
// Run: ./build/examples/live_htap [seconds]

#include <cstdio>
#include <cstdlib>

#include "engine/hybrid_engine.h"
#include "hattrick/datagen.h"
#include "hattrick/driver.h"

using namespace hattrick;  // NOLINT: example brevity

int main(int argc, char** argv) {
  const double seconds = argc > 1 ? std::atof(argv[1]) : 3.0;

  DatagenConfig datagen;
  datagen.scale_factor = 2.0;
  datagen.seed = 42;
  const Dataset dataset = GenerateDataset(datagen);

  HybridEngine engine(SystemXConfig());
  const Status status =
      LoadDataset(dataset, PhysicalSchema::kSemiIndexes, &engine);
  if (!status.ok()) {
    std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
    return 1;
  }

  WorkloadContext context(dataset);
  ThreadedDriver driver(&engine, &context);
  WorkloadConfig run;
  run.t_clients = 3;
  run.a_clients = 2;
  run.warmup_seconds = 0.2;
  run.measure_seconds = seconds;

  std::printf("running %d T-threads + %d A-threads for %.1f wall seconds "
              "against %s...\n",
              run.t_clients, run.a_clients, seconds,
              engine.name().c_str());
  const RunMetrics metrics = driver.Run(run);

  std::printf("committed %llu transactions (%.1f tps), %llu aborts, "
              "%llu failed\n",
              static_cast<unsigned long long>(metrics.committed),
              metrics.t_throughput,
              static_cast<unsigned long long>(metrics.aborts),
              static_cast<unsigned long long>(metrics.failed));
  std::printf("finished %llu analytical queries (%.2f qps)\n",
              static_cast<unsigned long long>(metrics.queries),
              metrics.a_throughput);
  if (!metrics.txn_latency.empty()) {
    std::printf("txn latency p50/p99: %.3f / %.3f ms\n",
                metrics.txn_latency.Percentile(0.5) * 1e3,
                metrics.txn_latency.Percentile(0.99) * 1e3);
  }
  if (!metrics.query_latency.empty()) {
    std::printf("query latency p50/p99: %.2f / %.2f ms\n",
                metrics.query_latency.Percentile(0.5) * 1e3,
                metrics.query_latency.Percentile(0.99) * 1e3);
  }
  if (!metrics.freshness.empty()) {
    std::printf("freshness p99: %.4f s (hybrid design merges the delta "
                "before every query)\n",
                metrics.freshness.Percentile(0.99));
  }
  return 0;
}
