// Quickstart: load HATtrick at a small scale factor into the shared
// (PostgreSQL-like) engine, run one mixed operating point in virtual
// time, and print throughput and freshness.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "engine/shared_engine.h"
#include "hattrick/datagen.h"
#include "hattrick/driver.h"

using namespace hattrick;  // NOLINT: example brevity

int main() {
  // 1. Generate the HATtrick dataset (SSB schema + HATtrick extensions).
  DatagenConfig datagen;
  datagen.scale_factor = 1.0;
  datagen.seed = 42;
  const Dataset dataset = GenerateDataset(datagen);
  std::printf("dataset: %zu lineorders, %zu customers, %zu suppliers, "
              "%zu parts\n",
              dataset.lineorder.size(), dataset.customer.size(),
              dataset.supplier.size(), dataset.part.size());

  // 2. Load it into a shared-design engine with all indexes.
  SharedEngine engine;
  Status status = LoadDataset(dataset, PhysicalSchema::kAllIndexes, &engine);
  if (!status.ok()) {
    std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // 3. Run one hybrid operating point: 4 T-clients + 2 A-clients.
  WorkloadContext context(dataset);
  SimDriver driver(&engine, &context, SharedSimSetup());
  WorkloadConfig config;
  config.t_clients = 4;
  config.a_clients = 2;
  config.warmup_seconds = 0.3;
  config.measure_seconds = 1.0;
  const RunMetrics metrics = driver.Run(config);

  std::printf("T throughput: %.1f tps (%llu committed, %llu aborts, "
              "%llu failed)\n",
              metrics.t_throughput,
              static_cast<unsigned long long>(metrics.committed),
              static_cast<unsigned long long>(metrics.aborts),
              static_cast<unsigned long long>(metrics.failed));
  std::printf("A throughput: %.2f qps (%llu queries)\n",
              metrics.a_throughput,
              static_cast<unsigned long long>(metrics.queries));
  if (!metrics.txn_latency.empty()) {
    std::printf("txn latency p50/p99: %.2f / %.2f ms\n",
                metrics.txn_latency.Percentile(0.5) * 1e3,
                metrics.txn_latency.Percentile(0.99) * 1e3);
  }
  if (!metrics.query_latency.empty()) {
    std::printf("query latency p50/p99: %.2f / %.2f ms\n",
                metrics.query_latency.Percentile(0.5) * 1e3,
                metrics.query_latency.Percentile(0.99) * 1e3);
  }
  if (!metrics.freshness.empty()) {
    std::printf("freshness p99: %.4f s (shared design: expected 0)\n",
                metrics.freshness.Percentile(0.99));
  }
  return 0;
}
